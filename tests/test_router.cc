/**
 * @file
 * In-process tests for shard-mode mscd (src/serve/router.*,
 * docs/DAEMON.md#sharding). Real Server instances listen on Unix
 * sockets inside this process as the shards; a Router fans requests
 * out to them; the client side is the src/client library over a
 * socketpair — so the full wire path (framing, demux, reassembly) is
 * exercised with no child processes. The same properties against the
 * real mscd/msctool binaries live in daemon_smoke.
 *
 * Proves:
 *  - a routed sweep reassembles byte-identically to a direct daemon's
 *    and carries the v3 provenance (via/shards, per-cell `shard`);
 *  - replaying a sweep computes nothing new anywhere (dedup and
 *    artifact caches stay shard-local), and the router's aggregated
 *    cache counters equal the sum of the shards' own gauges;
 *  - a shard that is down (connect refused) or dies on contact
 *    (connection lost) fails only its own cells: io error records,
 *    `partial` summary, exit code 3 — and the link recovers once a
 *    daemon comes back;
 *  - backpressure: past maxInflight, pooled requests get a structured
 *    `busy` error while the in-flight request's frames still arrive
 *    intact, and inline verbs (stats) are exempt;
 *  - trace forwarding relays the shard's result verbatim under the
 *    client's id; cancel reports unknown targets.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "client/client.h"
#include "report/record.h"
#include "serve/router.h"
#include "serve/server.h"

using namespace msc;
using client::ClientConn;
using client::RequestBuilder;
using client::ResponseFrame;

namespace {

namespace fs = std::filesystem;

/** Writes to sockets the peer already closed must error, not kill
 *  the test binary (mscd itself ignores SIGPIPE in main()). */
struct IgnoreSigpipe
{
    IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} g_sigpipe;

struct TempDir
{
    std::string dir;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "msc-router-XXXXXX").string();
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (!mkdtemp(buf.data()))
            throw std::runtime_error("mkdtemp failed");
        dir = buf.data();
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    std::string path(const std::string &name) const
    {
        return (fs::path(dir) / name).string();
    }
};

/** An in-process mscd Server listening on a Unix socket. */
class ShardDaemon
{
  public:
    explicit ShardDaemon(std::string sock) : _sock(std::move(sock))
    {
        serve::ServerConfig cfg;
        cfg.dispatch.jobs = 2;
        _server = std::make_unique<serve::Server>(std::move(cfg));
        _th = std::thread([this] { _server->serveUnix(_sock); });
        // Ready when a connection succeeds (bind+listen are done).
        for (int i = 0;; ++i) {
            try {
                ::close(client::connectEndpoint(endpoint()));
                return;
            } catch (const std::exception &) {
                if (i >= 200)
                    throw;
                ::usleep(10'000);
            }
        }
    }

    /** NOTE: blocks until every live connection (including router
     *  links) has closed — destroy the Router first. */
    ~ShardDaemon()
    {
        _server->requestStop();
        _th.join();
    }

    client::Endpoint endpoint() const
    {
        return client::parseEndpoint("unix:" + _sock);
    }

  private:
    std::string _sock;
    std::unique_ptr<serve::Server> _server;
    std::thread _th;
};

/** A listener that accepts and immediately closes every connection —
 *  a shard that "dies on contact", deterministically. */
class DeadOnContactShard
{
  public:
    explicit DeadOnContactShard(std::string sock)
        : _sock(std::move(sock))
    {
        _fd = serve::bindUnix(_sock, "test-dead-shard");
        if (_fd < 0)
            throw std::runtime_error("bindUnix failed");
        _th = std::thread([this] {
            while (true) {
                int c = ::accept(_fd, nullptr, nullptr);
                if (c < 0)
                    return;  // listener closed
                ::close(c);
            }
        });
    }

    ~DeadOnContactShard()
    {
        ::shutdown(_fd, SHUT_RDWR);
        ::close(_fd);
        _th.join();
        ::unlink(_sock.c_str());
    }

    client::Endpoint endpoint() const
    {
        return client::parseEndpoint("unix:" + _sock);
    }

  private:
    std::string _sock;
    int _fd = -1;
    std::thread _th;
};

/** One client conversation with an in-process Router, over a
 *  socketpair (no listener needed). */
class RouterConn
{
  public:
    explicit RouterConn(serve::Router &router)
    {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
            throw std::runtime_error("socketpair failed");
        _serverFd = sv[1];
        _th = std::thread([this, &router] {
            serve::FdTransport t(_serverFd, _serverFd);
            router.serveConnection(t);
        });
        _conn = std::make_unique<ClientConn>(sv[0], sv[0], true);
    }

    ~RouterConn()
    {
        _conn.reset();  // close our end -> serveConnection sees EOF
        _th.join();
        ::close(_serverFd);
    }

    ClientConn &operator*() { return *_conn; }
    ClientConn *operator->() { return _conn.get(); }

  private:
    std::unique_ptr<ClientConn> _conn;
    std::thread _th;
    int _serverFd = -1;
};

/** The grid every test sweeps: 8 cells, all fast at small scale. */
RequestBuilder
testSweep(const std::string &id)
{
    RequestBuilder b = RequestBuilder::sweep(id);
    b.workloads({"compress", "li", "go", "m88ksim"})
        .strategies({"bb", "cf"})
        .pus({2})
        .smallScale(true)
        .insts(20000);
    return b;
}

std::string
docOf(ClientConn::SweepOutcome &sw)
{
    return report::sweepDocFromRuns(std::move(sw.runs)).dump(2);
}

uint64_t
counterOf(const report::Json &metrics, const char *name)
{
    const report::Json *v = metrics.get("counters").find(name);
    return v ? v->asUInt() : 0;
}

report::Json
statsOf(const client::Endpoint &ep)
{
    ClientConn conn(ep);
    ResponseFrame last = conn.call(RequestBuilder::stats("st"));
    EXPECT_EQ(last.type, ResponseFrame::Type::Result);
    return last.raw.get("metrics");
}

TEST(Router, RoutedSweepMatchesDirectDaemonByteForByte)
{
    TempDir tmp;
    ShardDaemon s0(tmp.path("s0.sock"));
    ShardDaemon s1(tmp.path("s1.sock"));
    ShardDaemon direct(tmp.path("d.sock"));

    serve::RouterConfig rcfg;
    rcfg.shards = {s0.endpoint(), s1.endpoint()};
    serve::Router router(std::move(rcfg));

    // Routed.
    std::vector<report::Json> cells;
    ClientConn::SweepOutcome routed;
    {
        RouterConn conn(router);
        routed = conn->collectSweep(
            testSweep("s1"), [&](const ResponseFrame &f) {
                if (f.type == ResponseFrame::Type::Cell)
                    cells.push_back(f.raw);
            });
    }
    ASSERT_TRUE(routed.ok());
    EXPECT_EQ(routed.last.exitCode, 0);
    EXPECT_EQ(routed.last.status, "ok");
    EXPECT_EQ(routed.last.runs, 8u);
    EXPECT_EQ(routed.last.protocolVersion, serve::PROTOCOL_VERSION);

    // v3 provenance: summary names the router and both shards; every
    // relayed cell says which shard produced it, in [0, N).
    EXPECT_EQ(routed.last.via, "router");
    ASSERT_EQ(routed.last.shards.size(), 2u);
    EXPECT_EQ(routed.last.shards[0] + routed.last.shards[1], 8u);
    ASSERT_EQ(cells.size(), 8u);
    for (const auto &c : cells) {
        ASSERT_NE(c.find("shard"), nullptr);
        EXPECT_LT(c.get("shard").asUInt(), 2u);
    }

    // Direct (no router in the path).
    ClientConn dc(direct.endpoint());
    ClientConn::SweepOutcome plain = dc.collectSweep(testSweep("s1"));
    ASSERT_TRUE(plain.ok());
    EXPECT_TRUE(plain.last.via.empty());

    EXPECT_EQ(docOf(routed), docOf(plain));
}

TEST(Router, ReplayComputesNothingAndCachesStayShardLocal)
{
    TempDir tmp;
    ShardDaemon s0(tmp.path("s0.sock"));
    ShardDaemon s1(tmp.path("s1.sock"));

    serve::RouterConfig rcfg;
    rcfg.shards = {s0.endpoint(), s1.endpoint()};
    serve::Router router(std::move(rcfg));

    RouterConn conn(router);
    ClientConn::SweepOutcome first =
        conn->collectSweep(testSweep("s1"));
    ClientConn::SweepOutcome second =
        conn->collectSweep(testSweep("s2"));
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(docOf(first), docOf(second));

    // The aggregated cache counters are cumulative across the shard
    // fleet: the replay computed nothing new, it only hit.
    uint64_t computed1 =
        first.last.raw.get("cache").get("computed").asUInt();
    uint64_t computed2 =
        second.last.raw.get("cache").get("computed").asUInt();
    uint64_t hits1 = first.last.raw.get("cache").get("hits").asUInt();
    uint64_t hits2 =
        second.last.raw.get("cache").get("hits").asUInt();
    EXPECT_GT(computed1, 0u);
    EXPECT_EQ(computed2, computed1);
    EXPECT_GT(hits2, hits1);

    // Shard-local means the sum of the shards' own gauges IS the
    // router's aggregate — no artifact was computed anywhere else.
    report::Json m0 = statsOf(s0.endpoint());
    report::Json m1 = statsOf(s1.endpoint());
    EXPECT_EQ(m0.get("gauges").get("mscd.cache.computed").asUInt() +
                  m1.get("gauges").get("mscd.cache.computed").asUInt(),
              computed2);
    // Every cell went somewhere, and each shard served its share as
    // plain single-cell runs (16 = 8 cells x 2 sweeps).
    EXPECT_EQ(counterOf(m0, "mscd.requests.run") +
                  counterOf(m1, "mscd.requests.run"),
              16u);

    // The router's own registry, via its stats verb.
    ResponseFrame st =
        conn->call(RequestBuilder::stats("router-stats"));
    ASSERT_EQ(st.type, ResponseFrame::Type::Result);
    const report::Json &rm = st.raw.get("metrics");
    EXPECT_EQ(counterOf(rm, "router.requests.sweep"), 2u);
    EXPECT_EQ(counterOf(rm, "router.requests.stats"), 1u);
    EXPECT_EQ(counterOf(rm, "router.cells.forwarded"), 16u);
    EXPECT_EQ(counterOf(rm, "router.cells.failed"), 0u);
    EXPECT_EQ(counterOf(rm, "router.shard.0.cells") +
                  counterOf(rm, "router.shard.1.cells"),
              16u);
    EXPECT_EQ(counterOf(rm, "router.connections.accepted"), 1u);
}

TEST(Router, DownShardFailsOnlyItsCellsAndRecovers)
{
    TempDir tmp;
    ShardDaemon s0(tmp.path("s0.sock"));
    std::string lateSock = tmp.path("late.sock");
    // Declared before the router so it outlives it: ~ShardDaemon
    // blocks until every connection (the router's link) has closed.
    std::unique_ptr<ShardDaemon> late;

    serve::RouterConfig rcfg;
    rcfg.shards = {s0.endpoint(),
                   client::parseEndpoint("unix:" + lateSock)};
    rcfg.connectAttempts = 2;  // keep the backoff ladder short
    rcfg.connectBackoffMs = 1;
    serve::Router router(std::move(rcfg));
    RouterConn conn(router);

    // Nothing listens on late.sock yet: its cells become io error
    // records, everyone else's complete, the sweep is partial.
    ClientConn::SweepOutcome degraded =
        conn->collectSweep(testSweep("s1"));
    ASSERT_TRUE(degraded.ok());
    EXPECT_EQ(degraded.last.status, "partial");
    EXPECT_EQ(degraded.last.exitCode, report::EXIT_SWEEP_PARTIAL);
    EXPECT_TRUE(degraded.last.partial);
    ASSERT_EQ(degraded.last.shards.size(), 2u);
    EXPECT_EQ(degraded.last.errors, degraded.last.shards[1]);
    EXPECT_GE(degraded.last.errors, 1u);
    for (const auto &run : degraded.runs) {
        if (run.get("status").asString() == "ok")
            continue;
        EXPECT_EQ(run.get("error").get("kind").asString(), "io");
    }

    // A daemon arrives on that socket: the link reconnects (retry
    // with backoff) and the same grid now sweeps clean.
    late = std::make_unique<ShardDaemon>(lateSock);
    ClientConn::SweepOutcome healed =
        conn->collectSweep(testSweep("s2"));
    ASSERT_TRUE(healed.ok());
    EXPECT_EQ(healed.last.status, "ok");
    EXPECT_EQ(healed.last.exitCode, 0);
}

TEST(Router, ShardDyingOnContactDegradesToPartial)
{
    TempDir tmp;
    ShardDaemon s0(tmp.path("s0.sock"));
    DeadOnContactShard dead(tmp.path("dead.sock"));

    serve::RouterConfig rcfg;
    rcfg.shards = {s0.endpoint(), dead.endpoint()};
    rcfg.connectAttempts = 2;
    rcfg.connectBackoffMs = 1;
    serve::Router router(std::move(rcfg));
    RouterConn conn(router);

    // connect() succeeds (listen backlog), then the link collapses:
    // pending cells on it fail as connection-lost io errors.
    ClientConn::SweepOutcome sw = conn->collectSweep(testSweep("s1"));
    ASSERT_TRUE(sw.ok());
    EXPECT_EQ(sw.last.status, "partial");
    EXPECT_EQ(sw.last.exitCode, report::EXIT_SWEEP_PARTIAL);
    EXPECT_EQ(sw.last.errors, sw.last.shards[1]);
    EXPECT_GE(sw.last.errors, 1u);
    size_t ok = 0;
    for (const auto &run : sw.runs)
        ok += run.get("status").asString() == "ok";
    EXPECT_EQ(ok, size_t(sw.last.shards[0]));
}

TEST(Router, BackpressureRefusesWithBusyWithoutDroppingFrames)
{
    TempDir tmp;
    ShardDaemon s0(tmp.path("s0.sock"));

    serve::RouterConfig rcfg;
    rcfg.shards = {s0.endpoint()};
    rcfg.maxInflight = 1;
    serve::Router router(std::move(rcfg));
    RouterConn conn(router);

    // A deliberately slow cell (fuelbomb burns its whole fuel budget)
    // keeps the connection at the bound while the next pooled request
    // arrives; the reader refuses it *synchronously*, so this is not
    // a timing-dependent check.
    runtime::ExecBudget slowBudget;
    slowBudget.maxFuel = 50'000'000;
    RequestBuilder slow = RequestBuilder::run("slow", "fuelbomb");
    slow.strategy("bb").pusCount(2).smallScale(true).insts(20000)
        .budget(slowBudget);
    RequestBuilder fast = RequestBuilder::run("fast", "compress");
    fast.strategy("bb").pusCount(2).smallScale(true).insts(20000);

    conn->send(slow);
    conn->send(fast);

    bool sawBusy = false, sawSlowCell = false;
    ResponseFrame slowEnd;
    while (true) {
        ResponseFrame f = conn->next();
        if (f.id == "fast") {
            ASSERT_EQ(f.type, ResponseFrame::Type::Error);
            EXPECT_EQ(f.error.kind, runtime::ErrorKind::Busy);
            EXPECT_EQ(f.error.stage, "server");
            sawBusy = true;
        } else if (f.id == "slow") {
            if (f.type == ResponseFrame::Type::Cell) {
                sawSlowCell = true;
            } else {
                slowEnd = f;
                break;
            }
        }
    }
    // The refused request never disturbed the in-flight one: its cell
    // and summary frames arrived intact (the cell is a budget-fuel
    // error record — fuelbomb never halts — but it IS delivered).
    EXPECT_TRUE(sawBusy);
    EXPECT_TRUE(sawSlowCell);
    ASSERT_EQ(slowEnd.type, ResponseFrame::Type::Summary);
    EXPECT_EQ(slowEnd.runs, 1u);

    // Inline verbs bypass the pool and are exempt from the bound.
    ResponseFrame st = conn->call(RequestBuilder::stats("st"));
    ASSERT_EQ(st.type, ResponseFrame::Type::Result);
    EXPECT_EQ(counterOf(st.raw.get("metrics"),
                        "router.requests.busy"),
              1u);
}

TEST(Router, TraceForwardRelaysResultUnderClientId)
{
    TempDir tmp;
    ShardDaemon s0(tmp.path("s0.sock"));
    ShardDaemon direct(tmp.path("d.sock"));

    serve::RouterConfig rcfg;
    rcfg.shards = {s0.endpoint()};
    serve::Router router(std::move(rcfg));
    RouterConn conn(router);

    RequestBuilder req = RequestBuilder::trace("t1", "compress");
    req.strategy("bb").pusCount(2).smallScale(true).insts(20000);

    ResponseFrame routed = conn->call(req);
    ASSERT_EQ(routed.type, ResponseFrame::Type::Result);
    EXPECT_EQ(routed.id, "t1");
    EXPECT_EQ(routed.resultKind, "trace");

    ClientConn dc(direct.endpoint());
    ResponseFrame plain = dc.call(req);
    ASSERT_EQ(plain.type, ResponseFrame::Type::Result);
    EXPECT_EQ(routed.raw.get("run").dump(),
              plain.raw.get("run").dump());
    EXPECT_EQ(routed.raw.get("taskprof").dump(),
              plain.raw.get("taskprof").dump());
}

TEST(Router, UnknownWorkloadStillRoutesToIdenticalErrorRecord)
{
    TempDir tmp;
    ShardDaemon s0(tmp.path("s0.sock"));
    ShardDaemon direct(tmp.path("d.sock"));

    serve::RouterConfig rcfg;
    rcfg.shards = {s0.endpoint()};
    serve::Router router(std::move(rcfg));
    RouterConn conn(router);

    // No program -> no content key: the router falls back to a name
    // hash, and the shard's error record equals a direct daemon's.
    RequestBuilder req = RequestBuilder::run("u1", "nosuchworkload");
    req.strategy("bb").pusCount(2).smallScale(true).insts(20000);

    ClientConn::SweepOutcome routed = conn->collectSweep(req);
    ASSERT_TRUE(routed.ok());
    EXPECT_EQ(routed.last.status, "failed");
    EXPECT_EQ(routed.last.exitCode, report::EXIT_SWEEP_FAILED);

    ClientConn dc(direct.endpoint());
    ClientConn::SweepOutcome plain = dc.collectSweep(req);
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(docOf(routed), docOf(plain));
}

TEST(Router, CancelOfUnknownTargetReportsNotFound)
{
    TempDir tmp;
    ShardDaemon s0(tmp.path("s0.sock"));

    serve::RouterConfig rcfg;
    rcfg.shards = {s0.endpoint()};
    serve::Router router(std::move(rcfg));
    RouterConn conn(router);

    ResponseFrame res =
        conn->call(RequestBuilder::cancel("c1", "no-such-request"));
    ASSERT_EQ(res.type, ResponseFrame::Type::Result);
    EXPECT_EQ(res.resultKind, "cancel");
    EXPECT_FALSE(res.raw.get("found").asBool());
}

} // anonymous namespace
