/**
 * @file
 * Replays every committed reproducer in tests/corpus/ through the full
 * differential harness. Each file was originally written by the
 * shrinker for some historical divergence (or injected bug); once the
 * underlying defect is fixed the reproducer must stay green forever —
 * this is the regression corpus.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "fuzz/corpus.h"
#include "fuzz/oracle.h"
#include "ir/verifier.h"

#ifndef MSC_CORPUS_DIR
#error "MSC_CORPUS_DIR must point at the committed corpus directory"
#endif

using namespace msc;

namespace {

std::vector<std::string>
corpus()
{
    return fuzz::corpusFiles(MSC_CORPUS_DIR);
}

} // anonymous namespace

TEST(FuzzCorpus, DirectoryIsNotEmpty)
{
    EXPECT_FALSE(corpus().empty())
        << "no .mir reproducers under " << MSC_CORPUS_DIR;
}

class CorpusReplay : public ::testing::TestWithParam<std::string>
{};

TEST_P(CorpusReplay, VerifiesAndReplaysGreen)
{
    ir::Program p = fuzz::loadReproducer(GetParam());

    std::string err;
    ASSERT_TRUE(ir::verify(p, &err)) << err;

    fuzz::DiffResult d = fuzz::runDifferential(p);
    EXPECT_TRUE(d.ok()) << fuzz::diffKindName(d.kind) << " ["
                        << d.config << "]: " << d.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Files, CorpusReplay, ::testing::ValuesIn(corpus()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        // Sanitize the path into a valid gtest name.
        std::string base = info.param;
        size_t slash = base.find_last_of('/');
        if (slash != std::string::npos)
            base = base.substr(slash + 1);
        std::string name;
        for (char c : base)
            name += std::isalnum(static_cast<unsigned char>(c))
                        ? c : '_';
        return name.empty() ? std::string("empty") : name;
    });
