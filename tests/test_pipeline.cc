/**
 * @file
 * Integration and property tests over the full pipeline: workloads x
 * strategies x configurations, partition invariants on random
 * programs, and the paper's qualitative orderings.
 */

#include <gtest/gtest.h>

#include "arch/taskstream.h"
#include "helpers.h"
#include "profile/interpreter.h"
#include "sim/runner.h"
#include "tasksel/pverify.h"
#include "workloads/workload.h"

using namespace msc;
using namespace msc::tasksel;

namespace {

sim::RunResult
run(const ir::Program &p, Strategy s, unsigned pus = 4, bool ooo = true,
    bool size_heur = false)
{
    sim::RunOptions o;
    o.sel.strategy = s;
    o.sel.taskSizeHeuristic = size_heur;
    o.config = arch::SimConfig::paperConfig(pus, ooo);
    o.traceInsts = 60'000;
    return sim::runPipeline(p, o);
}

} // anonymous namespace

class PipelineTest
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{};

TEST_P(PipelineTest, CompletesAndRetiresTrace)
{
    auto [name, strat] = GetParam();
    ir::Program p = workloads::buildWorkload(name,
                                             workloads::Scale::Small);
    sim::RunResult r = run(p, Strategy(strat));
    EXPECT_GT(r.stats.ipc(), 0.05);
    EXPECT_LE(r.stats.ipc(), 8.0);
    EXPECT_GT(r.stats.retiredTasks, 0u);
    EXPECT_GT(r.stats.avgTaskSize(), 1.0);
    // The timing model retired exactly the functional trace.
    profile::Interpreter in(*r.prog);
    in.runQuiet(60'000);
    EXPECT_EQ(r.stats.retiredInsts, in.instCount());
}

namespace {

std::string
pipelineName(
    const ::testing::TestParamInfo<std::tuple<const char *, int>> &info)
{
    static const char *sn[] = {"bb", "cf", "dd"};
    return std::string(std::get<0>(info.param)) + "_" +
           sn[std::get<1>(info.param)];
}

} // anonymous namespace

INSTANTIATE_TEST_SUITE_P(
    Suite, PipelineTest,
    ::testing::Combine(
        ::testing::Values("go", "m88ksim", "compress", "li", "ijpeg",
                          "perl", "vortex", "gcc", "tomcatv", "swim",
                          "su2cor", "hydro2d", "mgrid", "applu", "turb3d",
                          "apsi", "fpppp", "wave5"),
        ::testing::Values(0, 1, 2)),
    pipelineName);

class HeuristicOrdering : public ::testing::TestWithParam<const char *>
{};

TEST_P(HeuristicOrdering, MultiBlockTasksBeatBasicBlocks)
{
    // The paper's headline (Figure 5): the heuristics substantially
    // outperform basic-block tasks on every benchmark.
    ir::Program p = workloads::buildWorkload(GetParam(),
                                             workloads::Scale::Small);
    auto bb = run(p, Strategy::BasicBlock);
    auto cf = run(p, Strategy::ControlFlow);
    EXPECT_GT(cf.stats.ipc(), bb.stats.ipc() * 1.05)
        << "control-flow tasks must clearly beat basic-block tasks";
}

TEST_P(HeuristicOrdering, TaskSizesGrowWithHeuristics)
{
    // Table 1: control-flow and data-dependence tasks are larger than
    // basic-block tasks.
    ir::Program p = workloads::buildWorkload(GetParam(),
                                             workloads::Scale::Small);
    auto bb = run(p, Strategy::BasicBlock);
    auto cf = run(p, Strategy::ControlFlow);
    EXPECT_GT(cf.stats.avgTaskSize(), bb.stats.avgTaskSize());
}

TEST_P(HeuristicOrdering, WindowSpanGrowsWithHeuristics)
{
    // §4.3.4: heuristic tasks establish far larger windows.
    ir::Program p = workloads::buildWorkload(GetParam(),
                                             workloads::Scale::Small);
    auto bb = run(p, Strategy::BasicBlock, 8);
    auto dd = run(p, Strategy::DataDependence, 8);
    EXPECT_GT(dd.stats.measuredWindowSpan,
              bb.stats.measuredWindowSpan);
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, HeuristicOrdering,
    ::testing::Values("go", "m88ksim", "compress", "li", "ijpeg", "perl",
                      "tomcatv", "swim", "hydro2d", "applu", "fpppp",
                      "wave5"),
    [](const auto &info) { return std::string(info.param); });

TEST(HeuristicEffects, EightPusNoSlowerThanFour)
{
    for (const char *name : {"tomcatv", "m88ksim", "ijpeg"}) {
        ir::Program p = workloads::buildWorkload(
            name, workloads::Scale::Small);
        auto p4 = run(p, Strategy::ControlFlow, 4);
        auto p8 = run(p, Strategy::ControlFlow, 8);
        EXPECT_LE(p8.stats.cycles, p4.stats.cycles + p4.stats.cycles / 20)
            << name;
    }
}

TEST(HeuristicEffects, SizeHeuristicGrowsCompressTasks)
{
    // "Only 129.compress and 145.fpppp respond to the task size
    // heuristic": for the compress analog the response is loop
    // unrolling that visibly grows tasks. (In this substrate the IPC
    // response is within noise of the strong DD baseline — see
    // EXPERIMENTS.md — so the mechanism, size growth at comparable
    // IPC, is what we pin down.)
    ir::Program p = workloads::buildWorkload("compress",
                                             workloads::Scale::Small);
    auto plain = run(p, Strategy::DataDependence, 4, true, false);
    auto sized = run(p, Strategy::DataDependence, 4, true, true);
    EXPECT_GE(sized.loopsUnrolled, 1u);
    EXPECT_GT(sized.stats.avgTaskSize(), plain.stats.avgTaskSize());
    EXPECT_GT(sized.stats.ipc(), plain.stats.ipc() * 0.9);
}

TEST(HeuristicEffects, SizeHeuristicIncludesFppppCalls)
{
    ir::Program p = workloads::buildWorkload("fpppp",
                                             workloads::Scale::Small);
    auto plain = run(p, Strategy::DataDependence, 4, true, false);
    auto sized = run(p, Strategy::DataDependence, 4, true, true);
    EXPECT_FALSE(sized.partition.includedCalls.empty());
    EXPECT_GT(sized.stats.avgTaskSize(),
              plain.stats.avgTaskSize() * 1.5);
    EXPECT_GT(sized.stats.ipc(), plain.stats.ipc() * 0.9);
}

TEST(HeuristicEffects, WindowSpanFormulaTracksMeasurement)
{
    // §4.3.4: window span = sum TaskSize * Pred^i approximates the
    // measured concurrent window.
    ir::Program p = workloads::buildWorkload("swim",
                                             workloads::Scale::Small);
    auto r = run(p, Strategy::ControlFlow, 8);
    double formula = r.stats.formulaWindowSpan(8);
    double measured = r.stats.measuredWindowSpan;
    EXPECT_GT(measured, formula * 0.3);
    EXPECT_LT(measured, formula * 3.0);
}

class RandomPipeline : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RandomPipeline, InvariantsHoldEndToEnd)
{
    uint64_t seed = GetParam();
    ir::Program p = test::makeRandomProgram(seed, 3);

    for (int strat = 0; strat < 3; ++strat) {
        sim::RunOptions o;
        o.sel.strategy = Strategy(strat);
        o.sel.taskSizeHeuristic = (seed % 2) == 0;
        o.sel.ddTerminateAtDependence = (seed % 3) == 0;
        o.config = arch::SimConfig::paperConfig(seed % 5 ? 4 : 8);
        o.traceInsts = 30'000;
        sim::RunResult r = sim::runPipeline(p, o);

        // Functional equivalence: the transformed program computes
        // the same checksum as the original.
        profile::Interpreter orig(p), xform(*r.prog);
        orig.runQuiet();
        xform.runQuiet();
        EXPECT_EQ(orig.mem(0), xform.mem(0)) << "seed " << seed;

        // Timing model retired the whole trace.
        profile::Interpreter again(*r.prog);
        again.runQuiet(30'000);
        EXPECT_EQ(r.stats.retiredInsts, again.instCount());
        EXPECT_GT(r.stats.ipc(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline,
                         ::testing::Range<uint64_t>(1, 21));
