/**
 * @file
 * Shared fixtures for the test suite: small hand-built programs and a
 * seeded random structured-program generator for property tests.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ir/builder.h"
#include "ir/program.h"

namespace msc {
namespace test {

/**
 * Builds a small counted-loop program:
 *   for (i = 0; i < n; ++i) mem[1000 + i] = i * 3;
 *   mem[0] = sum of the stored values.
 */
ir::Program makeLoopProgram(int64_t n = 50);

/** Builds a diamond (if/else reconvergence) repeated in a loop. */
ir::Program makeDiamondProgram(int64_t n = 64);

/** Builds a program with a small callee invoked in a loop. */
ir::Program makeCallProgram(int64_t n = 40, bool tiny_callee = true);

/**
 * Builds a program where task i+1's load conflicts with task i's
 * store (provokes memory-dependence violations under partitioning).
 */
ir::Program makeConflictProgram(int64_t n = 64);

/**
 * Generates a random but structurally valid program: nested loops,
 * diamonds, and arithmetic over bounded memory. Deterministic in
 * @p seed; always halts within a bounded instruction count.
 *
 * The effective seed is seed + seedOffset(), so a whole randomized
 * suite can be re-rolled by exporting MSC_TEST_SEED.
 */
ir::Program makeRandomProgram(uint64_t seed, unsigned size_class = 2);

/**
 * Seed offset for randomized tests: the value of the MSC_TEST_SEED
 * environment variable, or 0 when unset (the committed baseline).
 * Read once per process.
 */
uint64_t seedOffset();

/** @p seed shifted by seedOffset(); use for every test RNG so failures
 *  are reproducible via MSC_TEST_SEED. The value is remembered and
 *  printed by the failure listener helpers.cc installs. */
uint64_t effectiveSeed(uint64_t seed);

} // namespace test
} // namespace msc
