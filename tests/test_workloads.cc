/**
 * @file
 * Workload-suite tests: every SPEC95 analog builds, verifies,
 * executes to completion deterministically, and has the control-flow
 * character it stands in for.
 */

#include <gtest/gtest.h>

#include "ir/verifier.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"
#include "workloads/workload.h"

using namespace msc;
using namespace msc::workloads;

class WorkloadTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(WorkloadTest, BuildsAndVerifies)
{
    ir::Program p = buildWorkload(GetParam(), Scale::Small);
    std::string err;
    EXPECT_TRUE(ir::verify(p, &err)) << err;
    EXPECT_GT(p.numInsts(), 20u);
}

TEST_P(WorkloadTest, RunsToCompletion)
{
    ir::Program p = buildWorkload(GetParam(), Scale::Small);
    profile::Interpreter in(p);
    uint64_t n = in.runQuiet(30'000'000);
    EXPECT_TRUE(in.halted()) << "did not halt in " << n << " insts";
    EXPECT_GT(n, 1000u);
}

TEST_P(WorkloadTest, DeterministicChecksum)
{
    ir::Program p = buildWorkload(GetParam(), Scale::Small);
    profile::Interpreter a(p), b(p);
    a.runQuiet(30'000'000);
    b.runQuiet(30'000'000);
    EXPECT_EQ(a.mem(CHECKSUM_ADDR), b.mem(CHECKSUM_ADDR));
    EXPECT_EQ(a.instCount(), b.instCount());
}

TEST_P(WorkloadTest, FullScaleIsLarger)
{
    ir::Program small = buildWorkload(GetParam(), Scale::Small);
    ir::Program full = buildWorkload(GetParam(), Scale::Full);
    profile::Interpreter a(small);
    a.runQuiet(30'000'000);
    // Dynamic size must grow substantially with scale; run the full
    // binary only far enough to pass the small count.
    profile::Interpreter b(full);
    uint64_t cap = a.instCount() * 2;
    uint64_t n = b.runQuiet(cap);
    EXPECT_EQ(n, cap) << "full scale not substantially larger";
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadTest,
    ::testing::Values("go", "m88ksim", "gcc", "compress", "li", "ijpeg",
                      "perl", "vortex", "tomcatv", "swim", "su2cor",
                      "hydro2d", "mgrid", "applu", "turb3d", "apsi", "fpppp",
                      "wave5"),
    [](const auto &info) { return std::string(info.param); });

TEST(WorkloadRegistry, SixteenBenchmarksBalanced)
{
    const auto &all = allWorkloads();
    EXPECT_EQ(all.size(), 18u);
    unsigned fp = 0;
    for (const auto &w : all)
        if (w.isFp)
            ++fp;
    EXPECT_EQ(fp, 10u);
    EXPECT_THROW(buildWorkload("nope"), std::runtime_error);
    EXPECT_EQ(workloadInfo("compress").models, "129.compress");
}

TEST(WorkloadCharacter, IntegerCodesBranchierThanFp)
{
    // Average dynamic instructions per control transfer: integer
    // analogs must sit well below FP analogs (the property the
    // paper's task-size discussion rests on).
    auto branchiness = [](const char *name) {
        ir::Program p = buildWorkload(name, Scale::Small);
        profile::Interpreter in(p);
        uint64_t ctl = 0;
        uint64_t total = in.run([&](ir::InstRef, const ir::Instruction &i,
                                    uint64_t, bool) {
            if (i.isControl())
                ++ctl;
        }, 30'000'000);
        return double(total) / double(ctl ? ctl : 1);
    };
    double int_avg = (branchiness("go") + branchiness("compress") +
                      branchiness("perl") + branchiness("li")) / 4;
    double fp_avg = (branchiness("tomcatv") + branchiness("su2cor") +
                     branchiness("fpppp") + branchiness("applu")) / 4;
    EXPECT_GT(fp_avg, int_avg);
}

TEST(WorkloadCharacter, FpCodesUseFpUnits)
{
    for (const auto &w : allWorkloads()) {
        if (!w.isFp)
            continue;
        ir::Program p = w.build(Scale::Small);
        profile::Interpreter in(p);
        uint64_t fp_ops = 0;
        uint64_t total = in.run([&](ir::InstRef, const ir::Instruction &i,
                                    uint64_t, bool) {
            if (i.info().fu == ir::FuClass::FpAlu)
                ++fp_ops;
        }, 30'000'000);
        EXPECT_GT(fp_ops * 10, total) << w.name
            << ": FP analog has <10% FP operations";
    }
}

TEST(WorkloadCharacter, CompressExercisesHashTable)
{
    ir::Program p = buildWorkload("compress", Scale::Small);
    profile::Interpreter in(p);
    in.runQuiet(30'000'000);
    // Some dictionary entries were created past the alphabet codes.
    bool inserted = false;
    for (uint64_t w = 100000; w < 100000 + 2 * 8192 && !inserted; w += 2)
        if (in.mem(w + 1) > 256)
            inserted = true;
    EXPECT_TRUE(inserted);
}

TEST(WorkloadCharacter, CallHeavyAnalogsInvokeCallees)
{
    for (const char *name : {"li", "perl", "vortex", "mgrid", "fpppp"}) {
        ir::Program p = buildWorkload(name, Scale::Small);
        auto prof = profile::profileProgram(p, 30'000'000);
        uint64_t calls = 0;
        for (ir::FuncId f = 0; f < p.functions.size(); ++f)
            if (f != p.entry)
                calls += prof.funcInvocations[f];
        EXPECT_GT(calls, 5u) << name;
    }
}
