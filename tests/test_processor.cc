/**
 * @file
 * Tests of the dynamic task stream cutter and the full timing model.
 */

#include <gtest/gtest.h>

#include "arch/processor.h"
#include "arch/taskstream.h"
#include "helpers.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"
#include "sim/runner.h"
#include "tasksel/transforms.h"
#include "tasksel/selector.h"

using namespace msc;
using namespace msc::ir;
using namespace msc::arch;
using namespace msc::tasksel;

namespace {

struct Prepared
{
    Program prog;
    TaskPartition part;
    profile::Trace trace;
    std::vector<DynTask> tasks;
};

Prepared
prepare(Program p, Strategy s, bool size_heur = false)
{
    Prepared out{std::move(p), {}, {}, {}};
    profile::Profile prof = profile::profileProgram(out.prog);
    SelectionOptions opts;
    opts.strategy = s;
    opts.taskSizeHeuristic = size_heur;
    out.part = selectTasks(out.prog, prof, opts);
    profile::Interpreter in(out.prog);
    out.trace = in.trace();
    out.tasks = cutTasks(out.trace, out.part);
    return out;
}

} // anonymous namespace

TEST(TaskStream, ConcatenationEqualsTrace)
{
    auto pr = prepare(test::makeDiamondProgram(16),
                      Strategy::ControlFlow);
    size_t total = 0;
    for (const auto &t : pr.tasks)
        total += t.insts.size();
    EXPECT_EQ(total, pr.trace.size());
    // Order preserved.
    size_t k = 0;
    for (const auto &t : pr.tasks)
        for (const auto &di : t.insts)
            EXPECT_EQ(di.ref, pr.trace[k++].ref);
}

TEST(TaskStream, EveryTaskStartsAtItsEntry)
{
    auto pr = prepare(test::makeLoopProgram(20), Strategy::ControlFlow);
    for (const auto &t : pr.tasks) {
        const Task &st = pr.part.tasks[t.staticTask];
        EXPECT_EQ(t.insts.front().ref.block, st.entry);
        EXPECT_EQ(t.insts.front().ref.index, 0u);
        EXPECT_EQ(t.insts.front().ref.func, st.func);
    }
}

TEST(TaskStream, SuccessorTargetsResolve)
{
    auto pr = prepare(test::makeLoopProgram(20), Strategy::ControlFlow);
    for (size_t i = 0; i + 1 < pr.tasks.size(); ++i) {
        const DynTask &t = pr.tasks[i];
        EXPECT_FALSE(t.last);
        // Every non-final transition should be an exposed target of a
        // well-formed partition.
        EXPECT_GE(t.actualTargetIdx, 0) << "task " << i;
        EXPECT_EQ(t.nextEntry.block,
                  pr.part.tasks[pr.tasks[i + 1].staticTask].entry);
    }
    EXPECT_TRUE(pr.tasks.back().last);
}

TEST(TaskStream, BasicBlockTasksAreSingleBlocks)
{
    auto pr = prepare(test::makeDiamondProgram(8), Strategy::BasicBlock);
    for (const auto &t : pr.tasks) {
        BlockId b = t.insts.front().ref.block;
        for (const auto &di : t.insts)
            EXPECT_EQ(di.ref.block, b);
    }
}

TEST(TaskStream, IncludedCallStaysInCallerTask)
{
    auto pr = prepare(test::makeCallProgram(10, true),
                      Strategy::ControlFlow, /*size=*/true);
    ASSERT_EQ(pr.part.includedCalls.size(), 1u);
    // Callee instructions appear inside tasks whose static task
    // belongs to main.
    const Function *callee = pr.prog.findFunction("twice");
    for (const auto &t : pr.tasks) {
        bool has_callee = false;
        for (const auto &di : t.insts)
            if (di.ref.func == callee->id)
                has_callee = true;
        if (has_callee) {
            EXPECT_NE(pr.part.tasks[t.staticTask].func, callee->id)
                << "callee insts must ride in the caller's task";
        }
    }
}

TEST(TaskStream, NonIncludedCallSplitsTasks)
{
    auto pr = prepare(test::makeCallProgram(10, true),
                      Strategy::ControlFlow, /*size=*/false);
    const Function *callee = pr.prog.findFunction("twice");
    bool callee_task = false;
    for (const auto &t : pr.tasks) {
        if (pr.part.tasks[t.staticTask].func == callee->id) {
            callee_task = true;
            for (const auto &di : t.insts)
                EXPECT_EQ(di.ref.func, callee->id);
        }
    }
    EXPECT_TRUE(callee_task);
    // Call-ending tasks push a return site.
    bool saw_call_end = false;
    for (const auto &t : pr.tasks)
        if (t.endsInCall) {
            saw_call_end = true;
            EXPECT_TRUE(t.callReturnSite.valid());
        }
    EXPECT_TRUE(saw_call_end);
}

TEST(Simulate, RetiresEverything)
{
    auto pr = prepare(test::makeLoopProgram(30), Strategy::ControlFlow);
    SimStats s = simulate(pr.part, pr.tasks, SimConfig::paperConfig(4));
    EXPECT_EQ(s.retiredInsts, pr.trace.size());
    EXPECT_EQ(s.retiredTasks, pr.tasks.size());
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.ipc(), 0.0);
}

TEST(Simulate, IpcBoundedByMachineWidth)
{
    auto pr = prepare(test::makeLoopProgram(100), Strategy::ControlFlow);
    SimConfig cfg = SimConfig::paperConfig(4);
    SimStats s = simulate(pr.part, pr.tasks, cfg);
    EXPECT_LE(s.ipc(), double(cfg.numPUs * cfg.issueWidth));
}

TEST(Simulate, MorePusHelpParallelLoop)
{
    // Iterations of the loop program are independent except the IV
    // and sum: more PUs must not hurt, and should help.
    Program p = test::makeLoopProgram(200);
    tasksel::hoistInductionVariables(p);
    auto pr = prepare(std::move(p), Strategy::ControlFlow);
    SimStats s1 = simulate(pr.part, pr.tasks, SimConfig::paperConfig(1));
    SimStats s4 = simulate(pr.part, pr.tasks, SimConfig::paperConfig(4));
    EXPECT_LT(s4.cycles, s1.cycles);
    EXPECT_GT(double(s1.cycles) / double(s4.cycles), 1.3);
}

TEST(Simulate, InOrderNoFasterThanOutOfOrder)
{
    auto pr = prepare(test::makeDiamondProgram(64),
                      Strategy::ControlFlow);
    SimStats ooo = simulate(pr.part, pr.tasks,
                            SimConfig::paperConfig(4, true));
    SimStats ino = simulate(pr.part, pr.tasks,
                            SimConfig::paperConfig(4, false));
    EXPECT_LE(ooo.cycles, ino.cycles + ino.cycles / 10);
}

TEST(Simulate, MemViolationsDetectedOnConflicts)
{
    // Loads of addresses stored by the immediately preceding task:
    // speculation must trip at least once before synchronization
    // kicks in.
    auto pr = prepare(test::makeConflictProgram(64),
                      Strategy::BasicBlock);
    SimStats s = simulate(pr.part, pr.tasks, SimConfig::paperConfig(4));
    EXPECT_EQ(s.retiredInsts, pr.trace.size());
    EXPECT_GT(s.memViolations, 0u);
    EXPECT_GT(s.tasksSquashedMem, 0u);
}

TEST(Simulate, SyncTableLimitsRepeatViolations)
{
    auto pr = prepare(test::makeConflictProgram(200),
                      Strategy::BasicBlock);
    SimStats s = simulate(pr.part, pr.tasks, SimConfig::paperConfig(4));
    // Without synchronization every iteration would violate (~200);
    // the sync table should cut that dramatically.
    EXPECT_LT(s.memViolations, 50u);
}

TEST(Simulate, BucketsCoverExecution)
{
    auto pr = prepare(test::makeDiamondProgram(64),
                      Strategy::ControlFlow);
    SimConfig cfg = SimConfig::paperConfig(4);
    SimStats s = simulate(pr.part, pr.tasks, cfg);
    // All buckets are populated sanely and the total is within the
    // machine's cycle envelope.
    EXPECT_GT(s.buckets.counts[size_t(CycleKind::Useful)], 0u);
    EXPECT_LE(s.buckets.total() + s.idlePuCycles,
              (s.cycles + 2) * cfg.numPUs + s.retiredTasks *
                  (cfg.taskStartOverhead + cfg.taskEndOverhead));
    EXPECT_GT(s.measuredWindowSpan, 0.0);
}

TEST(Simulate, DeterministicAcrossRuns)
{
    auto pr = prepare(test::makeRandomProgram(5, 2),
                      Strategy::ControlFlow);
    SimStats a = simulate(pr.part, pr.tasks, SimConfig::paperConfig(4));
    SimStats b = simulate(pr.part, pr.tasks, SimConfig::paperConfig(4));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.taskMispredictions, b.taskMispredictions);
    EXPECT_EQ(a.memViolations, b.memViolations);
}

TEST(Simulate, TaskOverheadScalesWithTaskCount)
{
    auto pr = prepare(test::makeLoopProgram(100), Strategy::BasicBlock);
    SimConfig cfg = SimConfig::paperConfig(4);
    SimStats s = simulate(pr.part, pr.tasks, cfg);
    EXPECT_EQ(s.buckets.counts[size_t(CycleKind::TaskEnd)],
              s.retiredTasks * cfg.taskEndOverhead);
}

TEST(Simulate, EmptyStreamIsFine)
{
    auto pr = prepare(test::makeLoopProgram(1), Strategy::BasicBlock);
    std::vector<DynTask> none;
    SimStats s = simulate(pr.part, none, SimConfig::paperConfig(4));
    EXPECT_EQ(s.cycles, 0u);
    EXPECT_EQ(s.retiredInsts, 0u);
}

TEST(Simulate, SingleTaskProgram)
{
    IRBuilder b("one");
    b.setEntry("main");
    auto &f = b.function("main");
    f.li(8, 1);
    f.li(9, 2);
    f.add(10, 8, 9);
    f.storeAbs(10, 0);
    f.halt();
    auto pr = prepare(b.build(), Strategy::ControlFlow);
    ASSERT_EQ(pr.tasks.size(), 1u);
    SimStats s = simulate(pr.part, pr.tasks, SimConfig::paperConfig(4));
    EXPECT_EQ(s.retiredTasks, 1u);
    EXPECT_EQ(s.retiredInsts, 5u);
    EXPECT_EQ(s.taskPredictions, 0u);
}

TEST(Runner, PipelineEndToEnd)
{
    sim::RunOptions o;
    o.sel.strategy = Strategy::DataDependence;
    o.config = SimConfig::paperConfig(4);
    sim::RunResult r = sim::runPipeline(test::makeLoopProgram(100), o);
    EXPECT_GT(r.stats.ipc(), 0.0);
    EXPECT_GT(r.dynTaskCount, 0u);
    EXPECT_GE(r.ivsHoisted, 1u);
}

TEST(Runner, PartitionOnlySkipsSimulation)
{
    sim::RunOptions o;
    sim::RunResult r = sim::partitionOnly(test::makeLoopProgram(50), o);
    EXPECT_FALSE(r.partition.tasks.empty());
    EXPECT_EQ(r.stats.cycles, 0u);
}
