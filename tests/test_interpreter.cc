/**
 * @file
 * Functional tests of the interpreter: opcode semantics, control flow,
 * calls, tracing and profiling.
 */

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"

using namespace msc;
using namespace msc::ir;
using namespace msc::profile;

namespace {

/** Runs a single-block program applying @p emit, returns reg 10. */
template <typename Emit>
int64_t
evalInt(Emit &&emit)
{
    IRBuilder b("t");
    b.setEntry("main");
    auto &f = b.function("main");
    emit(f);
    f.halt();
    Program p = b.build();
    Interpreter in(p);
    in.runQuiet();
    EXPECT_TRUE(in.halted());
    return in.reg(10);
}

} // anonymous namespace

TEST(Interp, IntegerArithmetic)
{
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 20);
        f.li(9, 22);
        f.add(10, 8, 9);
    }), 42);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 20);
        f.subi(10, 8, 25);
    }), -5);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, -6);
        f.muli(10, 8, 7);
    }), -42);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 43);
        f.divi(10, 8, 6);
    }), 7);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 43);
        f.remi(10, 8, 6);
    }), 1);
    // Division by zero yields zero rather than trapping.
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 43);
        f.li(9, 0);
        f.div(10, 8, 9);
    }), 0);
}

TEST(Interp, LogicAndShifts)
{
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 0b1100);
        f.andi(10, 8, 0b1010);
    }), 0b1000);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 0b1100);
        f.ori(10, 8, 0b0011);
    }), 0b1111);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 6);
        f.shli(10, 8, 4);
    }), 96);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, -8);
        f.srai(10, 8, 1);
    }), -4);
    // Logical shift of a negative value.
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, -1);
        f.shri(10, 8, 63);
    }), 1);
}

TEST(Interp, Comparisons)
{
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 3);
        f.slti(10, 8, 4);
    }), 1);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 4);
        f.slti(10, 8, 4);
    }), 0);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 4);
        f.slei(10, 8, 4);
    }), 1);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 4);
        f.seqi(10, 8, 4);
    }), 1);
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(8, 4);
        f.snei(10, 8, 4);
    }), 0);
}

TEST(Interp, FloatingPoint)
{
    IRBuilder b("fp");
    b.setEntry("main");
    auto &f = b.function("main");
    f.fli(40, 1.5);
    f.fli(41, 2.5);
    f.fadd(42, 40, 41);
    f.fmul(43, 42, 41);      // 10.0
    f.fdiv(44, 43, 40);      // 6.666...
    f.ftoi(10, 43);
    f.li(8, 7);
    f.itof(45, 8);
    f.fslt(11, 40, 41);
    f.halt();
    Program p = b.build();
    Interpreter in(p);
    in.runQuiet();
    EXPECT_DOUBLE_EQ(in.freg(42), 4.0);
    EXPECT_DOUBLE_EQ(in.freg(43), 10.0);
    EXPECT_NEAR(in.freg(44), 10.0 / 1.5, 1e-12);
    EXPECT_EQ(in.reg(10), 10);
    EXPECT_DOUBLE_EQ(in.freg(45), 7.0);
    EXPECT_EQ(in.reg(11), 1);
}

TEST(Interp, MemoryOps)
{
    IRBuilder b("mem");
    b.setEntry("main");
    auto &f = b.function("main");
    f.li(8, 1234);
    f.li(9, 100);
    f.store(8, 9, 5);      // mem[105] = 1234.
    f.load(10, 9, 5);
    f.storeAbs(10, 7);
    f.loadAbs(11, 7);
    f.halt();
    Program p = b.build();
    Interpreter in(p);
    in.runQuiet();
    EXPECT_EQ(in.mem(105), 1234);
    EXPECT_EQ(in.reg(10), 1234);
    EXPECT_EQ(in.reg(11), 1234);
}

TEST(Interp, InitDataSeedsMemory)
{
    IRBuilder b("init");
    b.setEntry("main");
    b.initWord(50, 777);
    b.initDouble(51, 2.5);
    auto &f = b.function("main");
    f.loadAbs(10, 50);
    f.fload(40, 0, 51);
    f.halt();
    Program p = b.build();
    Interpreter in(p);
    in.runQuiet();
    EXPECT_EQ(in.reg(10), 777);
    EXPECT_DOUBLE_EQ(in.freg(40), 2.5);
}

TEST(Interp, ZeroRegisterIsImmutable)
{
    EXPECT_EQ(evalInt([](FunctionBuilder &f) {
        f.li(0, 55);
        f.mov(10, 0);
    }), 0);
}

TEST(Interp, BranchSemantics)
{
    // Br taken when cond != 0; BrZ when cond == 0.
    IRBuilder b("br");
    b.setEntry("main");
    auto &f = b.function("main");
    BlockId yes = f.newBlock(), no = f.newBlock(), j1 = f.newBlock();
    BlockId z_yes = f.newBlock(), z_no = f.newBlock(), end = f.newBlock();
    f.li(8, 5);
    f.br(8, yes, no);
    f.setBlock(yes);
    f.li(10, 1);
    f.jmp(j1);
    f.setBlock(no);
    f.li(10, 2);
    f.fallthroughTo(j1);
    f.setBlock(j1);
    f.li(9, 0);
    f.brz(9, z_yes, z_no);
    f.setBlock(z_yes);
    f.li(11, 3);
    f.jmp(end);
    f.setBlock(z_no);
    f.li(11, 4);
    f.fallthroughTo(end);
    f.setBlock(end);
    f.halt();
    Program p = b.build();
    Interpreter in(p);
    in.runQuiet();
    EXPECT_EQ(in.reg(10), 1);
    EXPECT_EQ(in.reg(11), 3);
}

TEST(Interp, LoopComputesExpectedValues)
{
    Program p = test::makeLoopProgram(50);
    Interpreter in(p);
    in.runQuiet();
    EXPECT_TRUE(in.halted());
    // sum of 3*i for i in [0,50) = 3 * 49*50/2.
    EXPECT_EQ(in.mem(0), 3 * 49 * 50 / 2);
    EXPECT_EQ(in.mem(1000 + 7), 21);
}

TEST(Interp, CallAndReturn)
{
    Program p = test::makeCallProgram(10);
    Interpreter in(p);
    in.runQuiet();
    EXPECT_TRUE(in.halted());
    // sum of 2*i for i in [0,10) = 90.
    EXPECT_EQ(in.mem(0), 90);
}

TEST(Interp, MaxInstsCapStopsExecution)
{
    Program p = test::makeLoopProgram(1'000'000);
    Interpreter in(p);
    uint64_t n = in.runQuiet(1000);
    EXPECT_EQ(n, 1000u);
    EXPECT_FALSE(in.halted());
}

TEST(Interp, OutOfBoundsAccessThrows)
{
    IRBuilder b("oob");
    b.setEntry("main");
    b.setMemWords(1024);
    auto &f = b.function("main");
    f.li(8, 99999);
    f.load(10, 8, 0);
    f.halt();
    Program p = b.build();
    Interpreter in(p);
    EXPECT_THROW(in.runQuiet(), std::runtime_error);
}

TEST(Interp, TraceMatchesExecution)
{
    Program p = test::makeDiamondProgram(8);
    Interpreter in(p);
    Trace t = in.trace();
    EXPECT_TRUE(t.completed);
    EXPECT_EQ(t.size(), in.instCount());
    // First entry is the entry block's first instruction.
    EXPECT_EQ(t[0].ref.func, p.entry);
    EXPECT_EQ(t[0].ref.block, p.functions[p.entry].entry);
    EXPECT_EQ(t[0].ref.index, 0u);
    // Memory entries carry addresses; branch entries carry outcomes.
    bool saw_taken = false;
    uint64_t max_store_addr = 0;
    unsigned stores = 0;
    for (const auto &e : t.entries) {
        const Instruction &inst = p.inst(e.ref);
        if (inst.isStore()) {
            ++stores;
            max_store_addr = std::max(max_store_addr, e.addr);
        }
        if (inst.isCondBranch() && e.taken)
            saw_taken = true;
    }
    EXPECT_GT(stores, 0u);
    EXPECT_GE(max_store_addr, 2000u);  // The in-loop store addresses.
    EXPECT_TRUE(saw_taken);
}

TEST(Interp, DeterministicAcrossRuns)
{
    Program p = test::makeRandomProgram(42);
    Interpreter a(p), b2(p);
    a.runQuiet();
    b2.runQuiet();
    EXPECT_EQ(a.instCount(), b2.instCount());
    EXPECT_EQ(a.mem(0), b2.mem(0));
}

TEST(Profiler, BlockAndEdgeCounts)
{
    Program p = test::makeLoopProgram(50);
    Profile prof = profileProgram(p);
    const Function &f = p.functions[p.entry];
    // The loop body executes 50 times; the header once more.
    uint64_t max_count = 0;
    for (const auto &b : f.blocks)
        max_count = std::max(max_count, prof.blockFreq(f.id, b.id));
    EXPECT_EQ(max_count, 51u);
    // Edge counts are consistent: flow into the body == body count.
    uint64_t into_body = 0;
    for (const auto &b : f.blocks)
        for (BlockId s : b.succs)
            if (prof.blockFreq(f.id, s) == 50)
                into_body = std::max(into_body,
                                     prof.edgeFreq(f.id, b.id, s));
    EXPECT_EQ(into_body, 50u);
}

TEST(Profiler, CallCountsAndInclusiveSize)
{
    Program p = test::makeCallProgram(40);
    Profile prof = profileProgram(p);
    const Function *callee = p.findFunction("twice");
    ASSERT_NE(callee, nullptr);
    EXPECT_EQ(prof.funcInvocations[callee->id], 40u);
    // The tiny callee has 2 instructions per invocation.
    EXPECT_NEAR(prof.avgCallInsts(callee->id), 2.0, 0.01);
    // An uncalled function reports a huge size.
    Profile p2 = prof;
    EXPECT_GT(p2.avgCallInsts(callee->id), 0.0);
}

TEST(Profiler, DefUseFrequencies)
{
    Program p = test::makeLoopProgram(50);
    Profile prof = profileProgram(p);
    EXPECT_FALSE(prof.defUseCount.empty());
    // Some dependence is exercised ~50 times (the IV chain).
    uint64_t best = 0;
    for (const auto &[k, v] : prof.defUseCount)
        best = std::max(best, v);
    EXPECT_GE(best, 49u);
}

TEST(Profiler, CallClobberReattribution)
{
    Program p = test::makeCallProgram(40);
    Profile prof = profileProgram(p);
    // The caller consumes r1 (return value) right after the call; the
    // dynamic def-use pair must attribute the def to the Call site,
    // not to the callee-internal instruction.
    bool call_as_def = false;
    for (const auto &[k, v] : prof.defUseCount) {
        if (k.reg == REG_RET && v >= 40) {
            const Instruction &def = p.inst(k.def);
            if (def.op == Opcode::Call)
                call_as_def = true;
        }
    }
    EXPECT_TRUE(call_as_def);
}

TEST(Profiler, TotalInstsMatchesInterpreter)
{
    Program p = test::makeDiamondProgram(16);
    Profile prof = profileProgram(p);
    Interpreter in(p);
    in.runQuiet();
    EXPECT_EQ(prof.totalInsts, in.instCount());
}
