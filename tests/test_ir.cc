/**
 * @file
 * Unit tests for the mini-IR: opcode metadata, instruction def/use
 * sets, the builder, the verifier, program layout and the printer.
 */

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"

using namespace msc;
using namespace msc::ir;

TEST(OpInfo, NamesRoundTrip)
{
    for (size_t i = 0; i < size_t(Opcode::NUM_OPCODES); ++i) {
        Opcode op = Opcode(i);
        EXPECT_EQ(opFromName(opName(op)), op) << opName(op);
    }
    EXPECT_EQ(opFromName("bogus"), Opcode::NUM_OPCODES);
}

TEST(OpInfo, FuClasses)
{
    EXPECT_EQ(opInfo(Opcode::Add).fu, FuClass::IntAlu);
    EXPECT_EQ(opInfo(Opcode::FMul).fu, FuClass::FpAlu);
    EXPECT_EQ(opInfo(Opcode::Load).fu, FuClass::Mem);
    EXPECT_EQ(opInfo(Opcode::Store).fu, FuClass::Mem);
    EXPECT_EQ(opInfo(Opcode::Br).fu, FuClass::Branch);
    EXPECT_EQ(opInfo(Opcode::Call).fu, FuClass::Branch);
    EXPECT_EQ(opInfo(Opcode::Nop).fu, FuClass::None);
}

TEST(OpInfo, Latencies)
{
    EXPECT_EQ(opInfo(Opcode::Add).latency, 1u);
    EXPECT_EQ(opInfo(Opcode::Mul).latency, 3u);
    EXPECT_EQ(opInfo(Opcode::Div).latency, 12u);
    EXPECT_EQ(opInfo(Opcode::FAdd).latency, 3u);
    EXPECT_EQ(opInfo(Opcode::FDiv).latency, 12u);
}

TEST(RegNames, RoundTrip)
{
    EXPECT_EQ(regName(0), "r0");
    EXPECT_EQ(regName(31), "r31");
    EXPECT_EQ(regName(32), "f32");
    EXPECT_EQ(regName(NO_REG), "--");
    EXPECT_EQ(regFromName("r17"), RegId(17));
    EXPECT_EQ(regFromName("f63"), RegId(63));
    EXPECT_EQ(regFromName("r64"), NO_REG);
    EXPECT_EQ(regFromName("x1"), NO_REG);
    EXPECT_EQ(regFromName(""), NO_REG);
}

TEST(Instruction, DefsUsesArithmetic)
{
    Instruction i;
    i.op = Opcode::Add;
    i.dst = 5;
    i.src1 = 6;
    i.src2 = 7;
    EXPECT_EQ(i.defs(), std::vector<RegId>({5}));
    EXPECT_EQ(i.uses(), std::vector<RegId>({6, 7}));

    i.src2 = NO_REG;  // Immediate form.
    EXPECT_EQ(i.uses(), std::vector<RegId>({6}));
}

TEST(Instruction, WritesToR0Ignored)
{
    Instruction i;
    i.op = Opcode::LoadImm;
    i.dst = REG_ZERO;
    i.imm = 5;
    EXPECT_FALSE(i.writesReg());
    EXPECT_TRUE(i.defs().empty());
}

TEST(Instruction, StoreHasNoDef)
{
    Instruction i;
    i.op = Opcode::Store;
    i.src1 = 3;
    i.src2 = 4;
    EXPECT_TRUE(i.defs().empty());
    EXPECT_EQ(i.uses(), std::vector<RegId>({3, 4}));
    EXPECT_TRUE(i.isStore());
    EXPECT_TRUE(i.isMemory());
    EXPECT_FALSE(i.isLoad());
}

TEST(Instruction, CallClobberSet)
{
    Instruction i;
    i.op = Opcode::Call;
    i.callee = 0;
    i.nargs = 2;
    auto defs = i.defs();
    auto uses = i.uses();
    EXPECT_EQ(uses, std::vector<RegId>({1, 2}));
    // Clobbers: r1, r8..r15, f32, f40..f47.
    EXPECT_NE(std::find(defs.begin(), defs.end(), REG_RET), defs.end());
    EXPECT_NE(std::find(defs.begin(), defs.end(), RegId(8)), defs.end());
    EXPECT_NE(std::find(defs.begin(), defs.end(), RegId(15)), defs.end());
    EXPECT_NE(std::find(defs.begin(), defs.end(), FREG_RET), defs.end());
    EXPECT_EQ(std::find(defs.begin(), defs.end(), RegId(16)), defs.end());
    EXPECT_EQ(std::find(defs.begin(), defs.end(), RegId(48)), defs.end());
}

TEST(Instruction, RetUsesReturnValue)
{
    Instruction i;
    i.op = Opcode::Ret;
    EXPECT_EQ(i.uses(), std::vector<RegId>({REG_RET}));
}

TEST(Builder, ProducesVerifiedProgram)
{
    Program p = test::makeLoopProgram();
    std::string err;
    EXPECT_TRUE(verify(p, &err)) << err;
    EXPECT_GT(p.numInsts(), 5u);
    EXPECT_TRUE(p.hasLayout());
}

TEST(Builder, CallCreatesContinuation)
{
    Program p = test::makeCallProgram();
    const Function *main_fn = p.findFunction("main");
    ASSERT_NE(main_fn, nullptr);
    bool found_call = false;
    for (const auto &b : main_fn->blocks) {
        if (b.endsInCall()) {
            found_call = true;
            EXPECT_NE(b.fallthrough, INVALID_BLOCK);
        }
    }
    EXPECT_TRUE(found_call);
}

TEST(Builder, CfgEdgesConsistent)
{
    Program p = test::makeDiamondProgram();
    const Function &f = p.functions[p.entry];
    for (const auto &b : f.blocks) {
        for (BlockId s : b.succs) {
            const auto &preds = f.blocks[s].preds;
            EXPECT_NE(std::find(preds.begin(), preds.end(), b.id),
                      preds.end())
                << "bb" << b.id << " -> bb" << s << " missing pred link";
        }
    }
}

TEST(Verifier, RejectsEmptyBlock)
{
    Program p = test::makeLoopProgram();
    p.functions[0].blocks[1].insts.clear();
    std::string err;
    EXPECT_FALSE(verify(p, &err));
    EXPECT_NE(err.find("empty"), std::string::npos);
}

TEST(Verifier, RejectsBadBranchTarget)
{
    Program p = test::makeLoopProgram();
    for (auto &b : p.functions[0].blocks) {
        if (!b.insts.empty() && b.insts.back().isCondBranch()) {
            b.insts.back().target = 9999;
            break;
        }
    }
    std::string err;
    EXPECT_FALSE(verify(p, &err));
}

TEST(Verifier, RejectsControlMidBlock)
{
    Program p = test::makeLoopProgram();
    Instruction j;
    j.op = Opcode::Jmp;
    j.target = 0;
    auto &insts = p.functions[0].blocks[0].insts;
    insts.insert(insts.begin(), j);
    std::string err;
    EXPECT_FALSE(verify(p, &err));
    EXPECT_NE(err.find("not at end"), std::string::npos);
}

TEST(Verifier, RejectsMissingFallthrough)
{
    Program p = test::makeLoopProgram();
    // Find a block with a fall-through and break it.
    for (auto &b : p.functions[0].blocks) {
        Opcode last = b.insts.back().op;
        if (last != Opcode::Jmp && last != Opcode::Halt &&
            last != Opcode::Ret) {
            b.fallthrough = INVALID_BLOCK;
            std::string err;
            EXPECT_FALSE(verify(p, &err));
            return;
        }
    }
    FAIL() << "no fall-through block found";
}

TEST(Verifier, RejectsBadRegister)
{
    Program p = test::makeLoopProgram();
    p.functions[0].blocks[0].insts[0].dst = 77;
    std::string err;
    EXPECT_FALSE(verify(p, &err));
}

TEST(Layout, AddressesAreDistinctAndOrdered)
{
    Program p = test::makeDiamondProgram();
    uint64_t prev = 0;
    for (const auto &f : p.functions) {
        for (const auto &b : f.blocks) {
            for (uint32_t i = 0; i < b.insts.size(); ++i) {
                uint64_t a = p.instAddr(f.id, b.id, i);
                EXPECT_GT(a, prev);
                EXPECT_EQ(a % 4, 0u);
                prev = a;
            }
        }
    }
}

TEST(Printer, ContainsStructure)
{
    Program p = test::makeCallProgram();
    std::string s = toString(p);
    EXPECT_NE(s.find("func @main"), std::string::npos);
    EXPECT_NE(s.find("func @twice"), std::string::npos);
    EXPECT_NE(s.find("call @twice"), std::string::npos);
    EXPECT_NE(s.find("halt"), std::string::npos);
}

TEST(Printer, InstructionFormats)
{
    Instruction i;
    i.op = Opcode::Add;
    i.dst = 3;
    i.src1 = 4;
    i.imm = 7;
    i.src2 = NO_REG;
    EXPECT_EQ(toString(i), "add r3, r4, 7");

    i.op = Opcode::Load;
    i.dst = 5;
    i.src1 = 6;
    i.imm = -2;
    EXPECT_EQ(toString(i), "ld r5, [r6 + -2]");

    i.op = Opcode::Br;
    i.src1 = 7;
    i.target = 3;
    EXPECT_EQ(toString(i), "br r7, bb3");
}

TEST(BlockRef, HashingAndEquality)
{
    BlockRef a{1, 2}, b{1, 2}, c{1, 3};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    std::hash<BlockRef> h;
    EXPECT_EQ(h(a), h(b));
}

TEST(BasicBlock, SuccessorsOfBranch)
{
    Program p = test::makeDiamondProgram();
    const Function &f = p.functions[0];
    bool saw_two_succ = false;
    for (const auto &b : f.blocks) {
        if (!b.insts.empty() && b.insts.back().isCondBranch()) {
            EXPECT_EQ(b.succs.size(), 2u);
            saw_two_succ = true;
        }
    }
    EXPECT_TRUE(saw_two_succ);
}
