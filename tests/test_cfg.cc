/**
 * @file
 * Unit tests for the CFG analyses: DFS, dominators, loops, def-use
 * chains, liveness, and reachability / codependent sets.
 */

#include <gtest/gtest.h>

#include "cfg/defuse.h"
#include "cfg/dfs.h"
#include "cfg/dominators.h"
#include "cfg/liveness.h"
#include "cfg/loops.h"
#include "cfg/reachability.h"
#include "helpers.h"

using namespace msc;
using namespace msc::ir;
using namespace msc::cfg;

namespace {

const Function &
mainOf(const Program &p)
{
    return p.functions[p.entry];
}

/** Finds the loop-header block (two preds: entry-side and latch). */
BlockId
findLoopHeader(const Function &f, const DfsInfo &dfs,
               const DominatorTree &dom)
{
    for (const auto &b : f.blocks)
        for (BlockId s : b.succs)
            if (dom.dominates(s, b.id))
                return s;
    (void)dfs;
    return INVALID_BLOCK;
}

} // anonymous namespace

TEST(Dfs, AllBlocksReachable)
{
    Program p = test::makeDiamondProgram();
    const Function &f = mainOf(p);
    DfsInfo dfs(f);
    for (const auto &b : f.blocks)
        EXPECT_TRUE(dfs.reachable(b.id)) << "bb" << b.id;
    EXPECT_EQ(dfs.rpo().size(), f.blocks.size());
    EXPECT_EQ(dfs.rpo().front(), f.entry);
}

TEST(Dfs, BackEdgeDetection)
{
    Program p = test::makeLoopProgram();
    const Function &f = mainOf(p);
    DfsInfo dfs(f);
    unsigned back_edges = 0;
    for (const auto &b : f.blocks)
        for (BlockId s : b.succs)
            if (dfs.isBackEdge(b.id, s))
                ++back_edges;
    EXPECT_EQ(back_edges, 1u);
}

TEST(Dfs, NoBackEdgesInDag)
{
    IRBuilder b("dag");
    b.setEntry("main");
    auto &f = b.function("main");
    BlockId t = f.newBlock(), e = f.newBlock(), j = f.newBlock();
    f.li(8, 1);
    f.br(8, t, e);
    f.setBlock(t);
    f.li(9, 2);
    f.jmp(j);
    f.setBlock(e);
    f.li(9, 3);
    f.fallthroughTo(j);
    f.setBlock(j);
    f.halt();
    Program p = b.build();
    DfsInfo dfs(p.functions[0]);
    for (const auto &bb : p.functions[0].blocks)
        for (BlockId s : bb.succs)
            EXPECT_FALSE(dfs.isBackEdge(bb.id, s));
}

TEST(Dominators, EntryDominatesEverything)
{
    Program p = test::makeDiamondProgram();
    const Function &f = mainOf(p);
    DfsInfo dfs(f);
    DominatorTree dom(f, dfs);
    for (const auto &b : f.blocks)
        EXPECT_TRUE(dom.dominates(f.entry, b.id));
    EXPECT_EQ(dom.idom(f.entry), INVALID_BLOCK);
}

TEST(Dominators, BranchArmsDoNotDominateJoin)
{
    IRBuilder b("dj");
    b.setEntry("main");
    auto &f = b.function("main");
    BlockId t = f.newBlock(), e = f.newBlock(), j = f.newBlock();
    f.li(8, 1);
    f.br(8, t, e);
    f.setBlock(t);
    f.li(9, 2);
    f.jmp(j);
    f.setBlock(e);
    f.li(9, 3);
    f.fallthroughTo(j);
    f.setBlock(j);
    f.halt();
    Program p = b.build();
    const Function &fn = p.functions[0];
    DfsInfo dfs(fn);
    DominatorTree dom(fn, dfs);
    EXPECT_FALSE(dom.dominates(t, j));
    EXPECT_FALSE(dom.dominates(e, j));
    EXPECT_TRUE(dom.dominates(fn.entry, j));
    EXPECT_EQ(dom.idom(j), fn.entry);
}

TEST(Loops, SingleLoopDetected)
{
    Program p = test::makeLoopProgram();
    const Function &f = mainOf(p);
    DfsInfo dfs(f);
    DominatorTree dom(f, dfs);
    LoopForest forest(f, dfs, dom);
    ASSERT_EQ(forest.loops().size(), 1u);
    const Loop &l = forest.loops()[0];
    EXPECT_TRUE(forest.isHeader(l.header));
    EXPECT_GE(l.blocks.size(), 2u);
    EXPECT_EQ(l.depth, 1u);
    EXPECT_EQ(l.parent, -1);
    // Entry/exit edge classification.
    for (BlockId pr : f.blocks[l.header].preds) {
        if (!l.contains(pr)) {
            EXPECT_TRUE(forest.isLoopEntryEdge(pr, l.header));
        }
    }
}

TEST(Loops, NestedLoopsHaveDepth)
{
    IRBuilder b("nest");
    b.setEntry("main");
    auto &f = b.function("main");
    BlockId oh = f.newBlock(), ob = f.newBlock();
    BlockId ih = f.newBlock(), ib = f.newBlock();
    BlockId ol = f.newBlock(), done = f.newBlock();
    f.li(16, 0);
    f.fallthroughTo(oh);
    f.setBlock(oh);
    f.slti(8, 16, 4);
    f.br(8, ob, done);
    f.setBlock(ob);
    f.li(17, 0);
    f.fallthroughTo(ih);
    f.setBlock(ih);
    f.slti(8, 17, 4);
    f.br(8, ib, ol);
    f.setBlock(ib);
    f.addi(17, 17, 1);
    f.jmp(ih);
    f.setBlock(ol);
    f.addi(16, 16, 1);
    f.jmp(oh);
    f.setBlock(done);
    f.halt();
    Program p = b.build();
    const Function &fn = p.functions[0];
    DfsInfo dfs(fn);
    DominatorTree dom(fn, dfs);
    LoopForest forest(fn, dfs, dom);
    ASSERT_EQ(forest.loops().size(), 2u);
    unsigned max_depth = 0;
    for (const auto &l : forest.loops())
        max_depth = std::max(max_depth, l.depth);
    EXPECT_EQ(max_depth, 2u);
    // The inner body belongs to the inner loop.
    int inner = forest.innermost(ib);
    ASSERT_GE(inner, 0);
    EXPECT_EQ(forest.loops()[inner].header, ih);
}

TEST(DefUse, ChainsLinkProducerToConsumer)
{
    Program p = test::makeLoopProgram();
    const Function &f = mainOf(p);
    DefUse du(f);
    EXPECT_FALSE(du.defSites().empty());
    EXPECT_FALSE(du.edges().empty());
    // Every edge's def site defines the register the use consumes.
    for (const auto &e : du.edges()) {
        const auto &def = du.defSites()[e.def];
        EXPECT_EQ(def.reg, e.reg);
        auto uses = p.inst(e.use).uses();
        EXPECT_NE(std::find(uses.begin(), uses.end(), e.reg), uses.end());
    }
}

TEST(DefUse, LoopCarriedDependenceFound)
{
    Program p = test::makeLoopProgram();
    const Function &f = mainOf(p);
    DefUse du(f);
    // The IV increment's def must reach a use in a different block
    // (the header comparison) through the back edge.
    bool cross_block = false;
    for (const auto &e : du.edges()) {
        const auto &def = du.defSites()[e.def];
        if (def.ref.block != e.use.block)
            cross_block = true;
    }
    EXPECT_TRUE(cross_block);
}

TEST(Liveness, IvLiveAroundLoop)
{
    Program p = test::makeLoopProgram();
    const Function &f = mainOf(p);
    DfsInfo dfs(f);
    DominatorTree dom(f, dfs);
    Liveness live(f);
    BlockId header = findLoopHeader(f, dfs, dom);
    ASSERT_NE(header, INVALID_BLOCK);
    // The IV (r16) and bound (r17) are live into the header.
    EXPECT_TRUE(regTest(live.liveIn(header), 16));
    EXPECT_TRUE(regTest(live.liveIn(header), 17));
}

TEST(Liveness, DeadAfterLastUse)
{
    IRBuilder b("dead");
    b.setEntry("main");
    auto &f = b.function("main");
    BlockId next = f.newBlock();
    f.li(8, 1);
    f.li(9, 2);
    f.add(10, 8, 9);
    f.fallthroughTo(next);
    f.setBlock(next);
    f.storeAbs(10, 0);
    f.halt();
    Program p = b.build();
    Liveness live(p.functions[0]);
    // r8/r9 die in block 0; r10 is live out.
    EXPECT_FALSE(regTest(live.liveOut(0), 8));
    EXPECT_FALSE(regTest(live.liveOut(0), 9));
    EXPECT_TRUE(regTest(live.liveOut(0), 10));
}

TEST(Reachability, ForwardBackwardAgree)
{
    Program p = test::makeDiamondProgram();
    const Function &f = mainOf(p);
    Reachability reach(f);
    for (const auto &a : f.blocks) {
        for (const auto &b2 : f.blocks) {
            EXPECT_EQ(reach.forward(a.id).test(b2.id),
                      reach.backward(b2.id).test(a.id));
        }
    }
}

TEST(Reachability, CodependentCoversBothArms)
{
    IRBuilder b("cod");
    b.setEntry("main");
    auto &f = b.function("main");
    BlockId t = f.newBlock(), e = f.newBlock(), j = f.newBlock();
    f.li(8, 1);
    f.br(8, t, e);
    f.setBlock(t);
    f.li(9, 2);
    f.jmp(j);
    f.setBlock(e);
    f.li(9, 3);
    f.fallthroughTo(j);
    f.setBlock(j);
    f.storeAbs(9, 0);
    f.halt();
    Program p = b.build();
    Reachability reach(p.functions[0]);
    DynBitset cd = reach.codependent(0, j);
    EXPECT_TRUE(cd.test(0));
    EXPECT_TRUE(cd.test(t));
    EXPECT_TRUE(cd.test(e));
    EXPECT_TRUE(cd.test(j));
    // No path from an arm to its sibling.
    EXPECT_TRUE(reach.codependent(t, e).none());
}

TEST(Bitset, Operations)
{
    DynBitset a(100), b2(100);
    a.set(3);
    a.set(64);
    a.set(99);
    b2.set(64);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_TRUE(a.test(64));
    EXPECT_FALSE(a.test(4));

    DynBitset c = a;
    c.intersectWith(b2);
    EXPECT_EQ(c.count(), 1u);
    EXPECT_TRUE(c.test(64));

    c = a;
    c.subtract(b2);
    EXPECT_FALSE(c.test(64));
    EXPECT_EQ(c.count(), 2u);

    EXPECT_TRUE(b2.unionWith(a));
    EXPECT_FALSE(b2.unionWith(a));  // Already a superset.

    std::vector<size_t> seen;
    a.forEach([&](size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, std::vector<size_t>({3, 64, 99}));
}
