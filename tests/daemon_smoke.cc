/**
 * @file
 * End-to-end smoke test for the real mscd binary (the daemon_smoke
 * ctest target; docs/DAEMON.md).
 *
 * Usage: daemon_smoke <path-to-mscd> <path-to-msctool>
 *
 * Proves, against the actual executables:
 *
 *  1. byte-identity: a sweep served by `mscd --stdio`, reassembled
 *     from its streamed cell frames through report::sweepDocFromRuns,
 *     equals the `msctool sweep --json` document for the same grid
 *     byte for byte;
 *  2. warm replay: repeating the request on the same connection
 *     returns byte-identical cells and computes nothing new (the
 *     summary's cumulative cache counters do not move);
 *  3. containment: a garbage frame yields one error frame and the
 *     next request on the same connection still runs;
 *  4. exit-code agreement: a mixed compress+fuelbomb sweep under a
 *     fuel budget exits msctool with 3 (partial) and produces an mscd
 *     summary with the same exit_code/status — and the same bytes;
 *  5. lifecycle: `mscd --unix` serves a connection over a real
 *     socket, shuts down cleanly on SIGTERM, and unlinks its socket;
 *  6. telemetry: `msctool stats --stdio` queried mid-connection
 *     against the live daemon returns a `msc.metrics` document whose
 *     request counters match exactly the work this test performed,
 *     and `msctool stats --unix` round-trips over the socket;
 *  7. versioning: `mscd --version` and `msctool version` exit 0 and
 *     advertise the msc.metrics schema;
 *  8. sharding (the PR acceptance path, docs/DAEMON.md#sharding): a
 *     `mscd --router` fronting four shard daemons serves the
 *     Figure-5 sweep byte-identically to a single `mscd --stdio`
 *     daemon — the same `msctool sweep --connect` invocation against
 *     either produces the same msc.sweep document, and the routed one
 *     reports its shard provenance;
 *  9. degradation: SIGKILLing a shard mid-sweep yields a partial
 *     sweep — the surviving shards' rows still stream, the dead
 *     shard's cells become io error rows, and msctool exits 3;
 * 10. TCP: mscd binds an ephemeral port (retrying past collisions)
 *     and `msctool --connect tcp:PORT` round-trips stats and a run.
 *
 * All scratch state lives in one mkdtemp directory removed on every
 * exit path (success, CHECK failure, or exception); child daemons
 * are killed on failure so a red run never leaks a process or a
 * socket file.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "report/record.h"
#include "serve/frame.h"

using namespace msc;

#define CHECK(cond)                                                   \
    do {                                                              \
        if (!(cond))                                                  \
            throw std::runtime_error(std::string("CHECK failed at ")  \
                                     + __FILE__ + ":" +               \
                                     std::to_string(__LINE__) +       \
                                     ": " #cond);                     \
    } while (0)

namespace {

namespace fs = std::filesystem;

/** Scratch directory + child registry, torn down on every exit. */
struct Scratch
{
    std::string dir;
    std::vector<pid_t> children;

    Scratch()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "msc-daemon-smoke-XXXXXX")
                .string();
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (!mkdtemp(buf.data()))
            throw std::runtime_error("mkdtemp failed");
        dir = buf.data();
    }

    ~Scratch()
    {
        for (pid_t pid : children)
            if (pid > 0 && ::kill(pid, 0) == 0) {
                ::kill(pid, SIGKILL);
                ::waitpid(pid, nullptr, 0);
            }
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    std::string path(const char *name) const
    {
        return (fs::path(dir) / name).string();
    }
};

/** A spawned mscd with pipes on its stdio (for --stdio mode) or just
 *  argv (listener modes). */
struct Child
{
    pid_t pid = -1;
    int in = -1;   ///< Write end feeding the child's stdin.
    int out = -1;  ///< Read end of the child's stdout.
};

Child
spawn(Scratch &scratch, const std::vector<std::string> &argv,
      bool with_pipes)
{
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    if (with_pipes)
        CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0);

    pid_t pid = ::fork();
    CHECK(pid >= 0);
    if (pid == 0) {
        if (with_pipes) {
            ::dup2(to_child[0], 0);
            ::dup2(from_child[1], 1);
            ::close(to_child[0]);
            ::close(to_child[1]);
            ::close(from_child[0]);
            ::close(from_child[1]);
        }
        std::vector<char *> args;
        for (const auto &a : argv)
            args.push_back(const_cast<char *>(a.c_str()));
        args.push_back(nullptr);
        ::execv(args[0], args.data());
        std::perror("execv");
        ::_exit(127);
    }

    Child c;
    c.pid = pid;
    if (with_pipes) {
        ::close(to_child[0]);
        ::close(from_child[1]);
        c.in = to_child[1];
        c.out = from_child[0];
    }
    scratch.children.push_back(pid);
    return c;
}

int
waitExit(pid_t pid)
{
    int status = 0;
    CHECK(::waitpid(pid, &status, 0) == pid);
    CHECK(WIFEXITED(status));
    return WEXITSTATUS(status);
}

/** Runs a child to completion (no pipes) and returns its exit code. */
int
run(Scratch &scratch, const std::vector<std::string> &argv)
{
    Child c = spawn(scratch, argv, false);
    return waitExit(c.pid);
}

/** Runs a child to completion, returning its captured stdout (stdin
 *  is closed immediately). */
std::string
runCapture(Scratch &scratch, const std::vector<std::string> &argv,
           int *exit_code)
{
    Child c = spawn(scratch, argv, true);
    ::close(c.in);
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(c.out, buf, sizeof buf)) > 0)
        out.append(buf, size_t(n));
    ::close(c.out);
    *exit_code = waitExit(c.pid);
    return out;
}

/** Runs msctool with the live --stdio daemon @p d as its wire: the
 *  tool's fd0/fd1 ARE the daemon connection, so with `--connect
 *  stdio` it renders on stderr, captured into @p err. The parent
 *  touches neither pipe meanwhile, so the daemon connection stays
 *  frame-aligned for whatever the test sends next. Returns the
 *  tool's exit code. */
int
runToolOverStdio(Scratch &scratch, const std::vector<std::string> &argv,
                 Child &d, std::string *err)
{
    int errp[2];
    CHECK(::pipe(errp) == 0);
    pid_t pid = ::fork();
    CHECK(pid >= 0);
    if (pid == 0) {
        ::dup2(d.out, 0);  // daemon stdout -> tool stdin
        ::dup2(d.in, 1);   // tool stdout -> daemon stdin
        ::dup2(errp[1], 2);
        ::close(errp[0]);
        ::close(errp[1]);
        std::vector<char *> args;
        for (const auto &a : argv)
            args.push_back(const_cast<char *>(a.c_str()));
        args.push_back(nullptr);
        ::execv(args[0], args.data());
        ::_exit(127);
    }
    ::close(errp[1]);
    scratch.children.push_back(pid);
    err->clear();
    char buf[4096];
    ssize_t n;
    while ((n = ::read(errp[0], buf, sizeof buf)) > 0)
        err->append(buf, size_t(n));
    ::close(errp[0]);
    return waitExit(pid);
}

std::string
statsOverStdio(Scratch &scratch, const std::string &msctool, Child &d)
{
    std::string out;
    CHECK(runToolOverStdio(scratch,
                           {msctool, "stats", "--stdio", "--json"}, d,
                           &out) == 0);
    return out;
}

/** Waits for @p path to appear on disk (a daemon finishing its
 *  bind — both Unix sockets and regular files). */
void
waitForFile(const std::string &path)
{
    for (int i = 0; i < 200; ++i) {
        if (fs::exists(path))
            return;
        ::usleep(25'000);
    }
    throw std::runtime_error("timed out waiting for " + path);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    CHECK(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Reads response frames off @p t until the summary (or result/error
 *  terminator) for @p id arrives. */
std::vector<report::Json>
collect(serve::Transport &t, const std::string &id)
{
    std::vector<report::Json> frames;
    while (true) {
        serve::FrameResult fr = serve::readFrame(t);
        CHECK(fr.status == serve::FrameStatus::Ok);
        frames.push_back(report::Json::parse(fr.payload));
        const report::Json &f = frames.back();
        std::string type = f.get("type").asString();
        bool mine = f.get("id").asString() == id;
        if (mine && (type == "summary" || type == "result" ||
                     type == "error"))
            return frames;
    }
}

/** Reassembles the streamed cell frames of @p frames (request @p id)
 *  into the msc.sweep document, exactly as a client would. */
std::string
reassemble(const std::vector<report::Json> &frames,
           const std::string &id)
{
    size_t total = 0;
    for (const auto &f : frames)
        if (f.get("id").asString() == id &&
            f.get("type").asString() == "cell")
            total = f.get("total").asUInt();
    CHECK(total > 0);
    std::vector<report::Json> runs(total);
    for (const auto &f : frames)
        if (f.get("id").asString() == id &&
            f.get("type").asString() == "cell")
            runs.at(f.get("index").asUInt()) = f.get("run");
    return report::sweepDocFromRuns(std::move(runs)).dump(2);
}

const report::Json &
frameOf(const std::vector<report::Json> &frames, const std::string &id,
        const std::string &type)
{
    for (const auto &f : frames)
        if (f.get("id").asString() == id &&
            f.get("type").asString() == type)
            return f;
    throw std::runtime_error("missing frame " + id + "/" + type);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: daemon_smoke <mscd> <msctool>\n");
        return 2;
    }
    const std::string mscd = argv[1];
    const std::string msctool = argv[2];

    try {
        Scratch scratch;

        // ---- 0. Version flags: both binaries advertise the
        //         protocol and every schema, including msc.metrics.
        int rc = -1;
        std::string v = runCapture(scratch, {mscd, "--version"}, &rc);
        CHECK(rc == 0);
        CHECK(v.find("protocol") != std::string::npos);
        CHECK(v.find("msc.sweep") != std::string::npos);
        CHECK(v.find("msc.metrics") != std::string::npos);
        v = runCapture(scratch, {msctool, "version"}, &rc);
        CHECK(rc == 0);
        CHECK(v.find("msc.metrics") != std::string::npos);

        // ---- 1. Byte-identity against msctool sweep --json.
        std::string ref = scratch.path("ref.json");
        CHECK(run(scratch,
                  {msctool, "sweep", "compress", "li", "--small",
                   "--strategy", "bb,cf", "--pus", "2", "--insts",
                   "20000", "--json", ref}) == 0);

        Child d = spawn(scratch, {mscd, "--stdio", "--jobs", "2"},
                        true);
        serve::FdTransport t(d.out, d.in);
        const std::string sweep_req =
            "\"kind\":\"sweep\",\"workloads\":[\"compress\",\"li\"],"
            "\"strategies\":[\"bb\",\"cf\"],\"pus\":[2],"
            "\"scale\":\"small\",\"insts\":20000}";
        serve::writeFrame(t, "{\"id\":\"s1\"," + sweep_req);
        std::vector<report::Json> first = collect(t, "s1");
        CHECK(reassemble(first, "s1") == slurp(ref));
        const report::Json &sum1 = frameOf(first, "s1", "summary");
        CHECK(sum1.get("status").asString() == "ok");
        CHECK(sum1.get("exit_code").asInt() == 0);

        // ---- 2. Warm replay: identical bytes, no new computes.
        serve::writeFrame(t, "{\"id\":\"s2\"," + sweep_req);
        std::vector<report::Json> second = collect(t, "s2");
        CHECK(reassemble(second, "s2") == slurp(ref));
        const report::Json &sum2 = frameOf(second, "s2", "summary");
        CHECK(sum2.get("cache").get("computed").asUInt() ==
              sum1.get("cache").get("computed").asUInt());

        // ---- 3. Garbage frame, then a valid request, same stream.
        serve::writeFrame(t, "this is not json");
        serve::FrameResult err = serve::readFrame(t);
        CHECK(err.status == serve::FrameStatus::Ok);
        report::Json errf = report::Json::parse(err.payload);
        CHECK(errf.get("type").asString() == "error");
        CHECK(errf.get("error").get("kind").asString() ==
              "invalid-input");

        serve::writeFrame(t, "{\"id\":\"s3\",\"kind\":\"run\","
                             "\"workload\":\"compress\","
                             "\"scale\":\"small\",\"insts\":20000,"
                             "\"pus\":2,\"strategy\":\"bb\"}");
        std::vector<report::Json> third = collect(t, "s3");
        CHECK(frameOf(third, "s3", "cell")
                  .get("run")
                  .get("status")
                  .asString() == "ok");

        // ---- 4. Budget-tripped sweep: daemon summary and msctool
        //         exit code come from the same mapping, and the
        //         partial documents match byte for byte too.
        std::string ref2 = scratch.path("ref2.json");
        CHECK(run(scratch,
                  {msctool, "sweep", "compress", "fuelbomb",
                   "--small", "--strategy", "bb", "--pus", "2",
                   "--insts", "20000", "--max-fuel", "200000",
                   "--json", ref2}) == 3);

        serve::writeFrame(
            t, "{\"id\":\"s4\",\"kind\":\"sweep\","
               "\"workloads\":[\"compress\",\"fuelbomb\"],"
               "\"strategies\":[\"bb\"],\"pus\":[2],"
               "\"scale\":\"small\",\"insts\":20000,"
               "\"budget\":{\"max_fuel\":200000}}");
        std::vector<report::Json> fourth = collect(t, "s4");
        const report::Json &sum4 = frameOf(fourth, "s4", "summary");
        CHECK(sum4.get("exit_code").asInt() == 3);
        CHECK(sum4.get("status").asString() == "partial");
        CHECK(sum4.get("partial").asBool());
        CHECK(reassemble(fourth, "s4") == slurp(ref2));

        // ---- 6a. Live telemetry mid-connection: msctool stats
        //          --stdio against this very daemon. The counters
        //          must match exactly the work performed above.
        report::Json m = report::Json::parse(
            statsOverStdio(scratch, msctool, d));
        CHECK(m.get("schema").asString() == "msc.metrics");
        const report::Json &ctr = m.get("counters");
        CHECK(ctr.get("mscd.requests.sweep").asUInt() == 3);  // s1 s2 s4
        CHECK(ctr.get("mscd.requests.run").asUInt() == 1);    // s3
        CHECK(ctr.get("mscd.requests.stats").asUInt() == 1);  // itself
        CHECK(ctr.get("mscd.requests.malformed").asUInt() == 1);
        // s1: 4 cells, s2: 4, s3: 1, s4: 2 — all submitted, none
        // concurrent, so no in-flight coalescing.
        CHECK(ctr.get("mscd.dispatch.cells_submitted").asUInt() == 11);
        CHECK(ctr.get("mscd.dispatch.dedup_hits").asUInt() == 0);
        CHECK(ctr.get("mscd.connections.accepted").asUInt() == 1);
        // The callback gauge reads the same pool counters the s4
        // summary reported — the two surfaces cannot disagree.
        CHECK(m.get("gauges").get("mscd.cache.computed").asUInt() ==
              sum4.get("cache").get("computed").asUInt());

        // End-of-stream: the --stdio daemon exits 0.
        ::close(d.in);
        ::close(d.out);
        CHECK(waitExit(d.pid) == 0);

        // ---- 5. Unix-socket round trip + clean SIGTERM shutdown.
        std::string sock = scratch.path("mscd.sock");
        Child u = spawn(scratch, {mscd, "--unix", sock}, false);

        int fd = -1;
        for (int attempt = 0; attempt < 100; ++attempt) {
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            CHECK(fd >= 0);
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            std::memcpy(addr.sun_path, sock.c_str(),
                        sock.size() + 1);
            if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr) == 0)
                break;
            ::close(fd);
            fd = -1;
            ::usleep(50'000);  // daemon still binding
        }
        CHECK(fd >= 0);

        serve::FdTransport s(fd, fd);
        serve::writeFrame(s, "{\"id\":\"u1\",\"kind\":\"run\","
                             "\"workload\":\"compress\","
                             "\"scale\":\"small\",\"insts\":20000,"
                             "\"pus\":2,\"strategy\":\"bb\"}");
        std::vector<report::Json> over_socket = collect(s, "u1");
        CHECK(frameOf(over_socket, "u1", "cell")
                  .get("run")
                  .get("status")
                  .asString() == "ok");
        ::close(fd);

        // ---- 6b. msctool stats over the Unix socket: a second
        //          connection querying the same daemon's registry.
        std::string stats_out = runCapture(
            scratch, {msctool, "stats", "--unix", sock, "--json"},
            &rc);
        CHECK(rc == 0);
        report::Json um = report::Json::parse(stats_out);
        CHECK(um.get("counters").get("mscd.requests.run").asUInt() ==
              1);
        CHECK(um.get("counters").get("mscd.requests.stats").asUInt() ==
              1);
        CHECK(um.get("counters")
                  .get("mscd.connections.accepted")
                  .asUInt() == 2);

        CHECK(::kill(u.pid, SIGTERM) == 0);
        CHECK(waitExit(u.pid) == 0);
        CHECK(!fs::exists(sock));

        // ---- 8. Shard mode: a 4-shard router serves the Figure-5
        //         sweep byte-identically to one mscd --stdio daemon.
        //         Both documents come out of the very same `msctool
        //         sweep --connect` code path — only the transport
        //         and the daemon topology differ.
        std::vector<Child> shard_procs;
        std::vector<std::string> router_argv = {mscd, "--router"};
        for (int i = 0; i < 4; ++i) {
            std::string ssock = scratch.path(
                ("shard" + std::to_string(i) + ".sock").c_str());
            shard_procs.push_back(spawn(
                scratch, {mscd, "--unix", ssock, "--jobs", "1"},
                false));
            router_argv.push_back("--shard");
            router_argv.push_back("unix:" + ssock);
        }
        std::string rsock = scratch.path("router.sock");
        router_argv.push_back("--unix");
        router_argv.push_back(rsock);
        Child router = spawn(scratch, router_argv, false);
        for (int i = 0; i < 4; ++i)
            waitForFile(scratch.path(
                ("shard" + std::to_string(i) + ".sock").c_str()));
        waitForFile(rsock);

        std::string routed = scratch.path("routed.json");
        std::string f5_out = runCapture(
            scratch,
            {msctool, "sweep", "--small", "--strategy", "bb,cf",
             "--pus", "4", "--insts", "20000", "--connect",
             "unix:" + rsock, "--json", routed},
            &rc);
        CHECK(rc == 0);

        Child sref = spawn(scratch, {mscd, "--stdio"}, true);
        std::string ref5 = scratch.path("figure5.json");
        std::string render;
        CHECK(runToolOverStdio(
                  scratch,
                  {msctool, "sweep", "--small", "--strategy", "bb,cf",
                   "--pus", "4", "--insts", "20000", "--connect",
                   "stdio", "--json", ref5},
                  sref, &render) == 0);
        CHECK(render.find("routed") == std::string::npos);
        ::close(sref.in);
        ::close(sref.out);
        CHECK(waitExit(sref.pid) == 0);

        CHECK(slurp(routed) == slurp(ref5));

        // The router advertises its topology over the stats verb.
        std::string rstats = runCapture(
            scratch,
            {msctool, "stats", "--connect", "unix:" + rsock, "--json"},
            &rc);
        CHECK(rc == 0);
        report::Json rm = report::Json::parse(rstats);
        CHECK(rm.get("counters")
                  .get("router.requests.sweep")
                  .asUInt() == 1);
        CHECK(rm.get("counters")
                  .get("router.cells.failed")
                  .asUInt() == 0);

        // ---- 9. Kill a shard mid-sweep: surviving rows stream, the
        //         dead shard's cells become io error rows, msctool
        //         exits with the partial code.
        Child deg = spawn(scratch,
                          {msctool, "sweep", "--small", "--strategy",
                           "bb,cf", "--pus", "2", "--insts", "50000",
                           "--connect", "unix:" + rsock},
                          true);
        ::close(deg.in);
        std::string table;
        {   // A few rows prove the sweep is underway (each row is
            // flushed as its cell frame arrives) — then the kill
            // lands while most of the grid is still in flight.
            size_t newlines = 0;
            char buf[512];
            while (newlines < 4) {
                ssize_t n = ::read(deg.out, buf, sizeof buf);
                CHECK(n > 0);
                for (ssize_t k = 0; k < n; ++k)
                    newlines += buf[k] == '\n';
                table.append(buf, size_t(n));
            }
        }
        CHECK(::kill(shard_procs[2].pid, SIGKILL) == 0);
        ::waitpid(shard_procs[2].pid, nullptr, 0);
        {
            char buf[4096];
            ssize_t n;
            while ((n = ::read(deg.out, buf, sizeof buf)) > 0)
                table.append(buf, size_t(n));
        }
        ::close(deg.out);
        CHECK(waitExit(deg.pid) == 3);
        CHECK(table.find("ERROR") != std::string::npos);
        CHECK(table.find(" io: ") != std::string::npos);

        // Router outlives the dead shard and shuts down cleanly; so
        // do the surviving shards.
        CHECK(::kill(router.pid, SIGTERM) == 0);
        CHECK(waitExit(router.pid) == 0);
        CHECK(!fs::exists(rsock));
        for (int i = 0; i < 4; ++i) {
            if (i == 2)
                continue;
            CHECK(::kill(shard_procs[i].pid, SIGTERM) == 0);
            CHECK(waitExit(shard_procs[i].pid) == 0);
        }

        // ---- 10. TCP: retry-bind an ephemeral port (SO_REUSEADDR +
        //          a fresh candidate per collision), then round-trip
        //          stats and a run over --connect tcp:PORT.
        bool tcp_ok = false;
        for (int attempt = 0; attempt < 8 && !tcp_ok; ++attempt) {
            int port =
                33000 + int((::getpid() * 7 + attempt * 101) % 20000);
            std::string pspec = "tcp:" + std::to_string(port);
            Child td = spawn(
                scratch, {mscd, "--tcp", std::to_string(port)},
                false);
            for (int i = 0; i < 40; ++i) {
                int src = -1;
                std::string so = runCapture(scratch,
                                            {msctool, "stats",
                                             "--connect", pspec,
                                             "--json"},
                                            &src);
                if (src == 0) {
                    report::Json tm = report::Json::parse(so);
                    CHECK(tm.get("counters")
                              .get("mscd.requests.stats")
                              .asUInt() >= 1);
                    tcp_ok = true;
                    break;
                }
                if (::waitpid(td.pid, nullptr, WNOHANG) == td.pid)
                    break;  // port taken: next candidate
                ::usleep(50'000);
            }
            if (!tcp_ok)
                continue;
            std::string row = runCapture(
                scratch,
                {msctool, "run", "compress", "--insts", "20000",
                 "--pus", "2", "--strategy", "bb", "--connect",
                 pspec},
                &rc);
            CHECK(rc == 0);
            CHECK(row.find("compress") != std::string::npos);
            CHECK(::kill(td.pid, SIGTERM) == 0);
            CHECK(waitExit(td.pid) == 0);
        }
        CHECK(tcp_ok);

        std::printf("daemon_smoke: all checks passed\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "daemon_smoke: %s\n", e.what());
        return 1;
    }
}
