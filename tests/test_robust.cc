/**
 * @file
 * Robustness integration tests (docs/ROBUSTNESS.md):
 *
 *  - fault-isolated sweeps: a fuel-bombed cell yields an error record
 *    while every other cell completes, the document is partial-marked,
 *    and the exit-code mapping distinguishes clean/partial/failed;
 *  - budget determinism: exhausting the same budget twice produces
 *    byte-identical StageError records and msc.sweep documents;
 *  - cancellation: a tripped CancelToken aborts a stage compute
 *    without corrupting the Session's in-memory or on-disk caches —
 *    clearing the token and retrying recomputes and succeeds;
 *  - disk-cache self-healing: injected write faults retry, corrupt
 *    entries (on-disk garbage or injected read faults) are quarantined
 *    and recomputed rather than poisoning later runs.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "helpers.h"
#include "pipeline/pool.h"
#include "pipeline/session.h"
#include "report/record.h"
#include "report/sweep.h"
#include "runtime/budget.h"
#include "runtime/error.h"
#include "runtime/fault.h"
#include "workloads/workload.h"

using namespace msc;
using pipeline::Session;
using pipeline::SessionConfig;
using pipeline::StageOptions;
using runtime::ErrorKind;
using runtime::StageError;

namespace {

namespace fs = std::filesystem;

std::string
freshDir(const char *name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
                   (std::string("msc-robust-") + name);
    fs::remove_all(dir);
    return dir.string();
}

size_t
countFiles(const std::string &dir, const std::string &ext)
{
    size_t n = 0;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir, ec))
        if (e.path().extension() == ext)
            ++n;
    return n;
}

/** The ISSUE acceptance grid: one workload that completes under the
 *  budget and one that cannot halt. */
std::vector<report::RunSpec>
bombGrid(uint64_t max_fuel)
{
    std::vector<report::RunSpec> specs;
    for (const char *w : {"compress", "fuelbomb"}) {
        report::RunSpec s = report::makeSpec(
            w, tasksel::Strategy::BasicBlock, 2, true,
            workloads::Scale::Small, 10'000);
        s.opts.budget.maxFuel = max_fuel;
        specs.push_back(std::move(s));
    }
    return specs;
}

StageOptions
smallOptions()
{
    tasksel::SelectionOptions sel;
    StageOptions o = StageOptions::fromSelection(sel);
    o.profile.profileInsts = 20'000;
    o.trace.traceInsts = 10'000;
    o.config = arch::SimConfig::paperConfig(2);
    return o;
}

} // anonymous namespace

// ------------------------------------------------ fault isolation

TEST(RobustSweep, FuelBombedCellIsIsolated)
{
    report::SweepRunner runner(1);
    std::vector<report::RunRecord> recs = runner.run(bombGrid(200'000));
    ASSERT_EQ(recs.size(), 2u);

    EXPECT_TRUE(recs[0].ok()) << recs[0].error.render();
    ASSERT_FALSE(recs[1].ok());
    EXPECT_EQ(recs[1].error.kind, ErrorKind::BudgetFuel);
    EXPECT_EQ(recs[1].error.stage, "profile");
    EXPECT_EQ(recs[1].error.workload, "fuelbomb");
    EXPECT_EQ(recs[1].error.limit, 200'000u);
    EXPECT_GT(recs[1].error.used, 200'000u);

    EXPECT_EQ(report::sweepExitCode(recs), report::EXIT_SWEEP_PARTIAL);

    report::Json doc = report::sweepToJson(recs);
    EXPECT_TRUE(doc.get("partial").asBool());
    EXPECT_EQ(doc.get("errors").asUInt(), 1u);
    const report::Json &runs = doc.get("runs");
    EXPECT_EQ(runs.at(0).get("status").asString(), "ok");
    EXPECT_EQ(runs.at(1).get("status").asString(), "error");
    EXPECT_EQ(runs.at(1).get("error").get("kind").asString(),
              "budget-fuel");
    EXPECT_TRUE(
        runs.at(1).get("error").get("budget_exhausted").asBool());
}

TEST(RobustSweep, ExitCodeMapping)
{
    using report::RunRecord;
    std::vector<RunRecord> empty;
    EXPECT_EQ(report::sweepExitCode(empty), report::EXIT_SWEEP_CLEAN);

    RunRecord ok_rec;
    RunRecord bad_rec;
    bad_rec.error.kind = ErrorKind::BudgetFuel;

    std::vector<RunRecord> clean = {ok_rec, ok_rec};
    EXPECT_EQ(report::sweepExitCode(clean), report::EXIT_SWEEP_CLEAN);
    std::vector<RunRecord> part = {ok_rec, bad_rec};
    EXPECT_EQ(report::sweepExitCode(part), report::EXIT_SWEEP_PARTIAL);
    std::vector<RunRecord> dead = {bad_rec, bad_rec};
    EXPECT_EQ(report::sweepExitCode(dead), report::EXIT_SWEEP_FAILED);
}

// -------------------------------------------- budget determinism

TEST(RobustSweep, SameBudgetTwiceIsByteIdentical)
{
    report::SweepRunner runner(1);
    std::vector<report::RunRecord> a = runner.run(bombGrid(200'000));
    std::vector<report::RunRecord> b = runner.run(bombGrid(200'000));

    // The whole documents — metrics of the surviving cell AND the
    // error record of the bombed one — must match byte for byte.
    EXPECT_EQ(report::sweepToJson(a).dump(2),
              report::sweepToJson(b).dump(2));
    EXPECT_EQ(report::sweepToCsv(a), report::sweepToCsv(b));
    EXPECT_EQ(report::errorToJson(a[1].error).dump(2),
              report::errorToJson(b[1].error).dump(2));
}

// ------------------------------------------------- cancellation

TEST(RobustSession, CancellationMidPipelineLeavesCacheClean)
{
    std::string dir = freshDir("cancel");
    ir::Program prog = test::makeLoopProgram(200);

    Session s(prog, SessionConfig{dir});
    StageOptions o = smallOptions();

    // Warm the frontend, then cancel the timing simulation.
    ASSERT_NE(s.trace(o), nullptr);
    runtime::CancelToken tok;
    tok.requestCancel();
    o.cancel = &tok;
    try {
        s.simulate(o);
        FAIL() << "expected StageError";
    } catch (const StageError &e) {
        EXPECT_EQ(e.info().kind, ErrorKind::Cancelled);
        EXPECT_EQ(e.info().stage, "simulate");
    }

    // The poisoned slot must be dropped: clearing the token and
    // retrying recomputes and succeeds on the same Session.
    o.cancel = nullptr;
    auto sim = s.simulate(o);
    ASSERT_NE(sim, nullptr);
    EXPECT_GT(sim->stats.cycles, 0u);

    // Nothing partial reached the disk either: a fresh Session over
    // the same directory loads every persisted artifact and agrees
    // with an uncached run bit for bit.
    EXPECT_EQ(countFiles(dir, ".quarantine"), 0u);
    Session warm(prog, SessionConfig{dir});
    auto sim2 = warm.simulate(o);
    EXPECT_GT(warm.cacheStats().diskHits(), 0u);
    Session cold(prog);
    auto sim3 = cold.simulate(o);
    EXPECT_EQ(sim2->stats.cycles, sim3->stats.cycles);
    EXPECT_EQ(sim2->stats.retiredInsts, sim3->stats.retiredInsts);
}

TEST(RobustSession, PreCancelledTokenStopsFirstStage)
{
    runtime::CancelToken tok;
    tok.requestCancel();
    StageOptions o = smallOptions();
    o.cancel = &tok;
    Session s(test::makeLoopProgram(100));
    EXPECT_THROW(s.runAll(o), StageError);
    // The poisoned slot was dropped, not published: clearing the
    // token re-runs the stage (a second compute, not a cache hit or
    // a resurfaced failure).
    o.cancel = nullptr;
    pipeline::StageResults r = s.runAll(o);
    ASSERT_NE(r.sim, nullptr);
    EXPECT_EQ(s.cacheStats()[pipeline::StageKind::Transform].computed,
              2u);
}

// --------------------------------------------- disk-cache healing

TEST(RobustDiskCache, WriteFaultIsRetried)
{
    std::string dir = freshDir("write-retry");
    runtime::FaultInjector::instance().configure("cache-write=1");

    Session s(test::makeLoopProgram(150), SessionConfig{dir});
    ASSERT_NE(s.select(smallOptions()), nullptr);

    runtime::FaultInjector::instance().configure("");
    // The first attempt failed, the retry landed: all three
    // persistable frontend artifacts are on disk.
    EXPECT_EQ(countFiles(dir, ".json"), 3u);

    Session warm(test::makeLoopProgram(150), SessionConfig{dir});
    ASSERT_NE(warm.select(smallOptions()), nullptr);
    EXPECT_EQ(warm.cacheStats().diskHits(), 3u);
}

TEST(RobustDiskCache, PersistentWriteFailureIsNonFatal)
{
    std::string dir = freshDir("write-fail");
    // More armed failures than attempts: every store gives up.
    runtime::FaultInjector::instance().configure("cache-write=100");

    Session s(test::makeLoopProgram(150), SessionConfig{dir});
    auto part = s.select(smallOptions());
    runtime::FaultInjector::instance().configure("");

    // The run itself succeeded; the cache just stayed cold.
    ASSERT_NE(part, nullptr);
    EXPECT_EQ(countFiles(dir, ".json"), 0u);
}

TEST(RobustDiskCache, CorruptEntryIsQuarantinedAndRecomputed)
{
    std::string dir = freshDir("corrupt");
    ir::Program prog = test::makeLoopProgram(150);
    StageOptions o = smallOptions();

    {
        Session s(prog, SessionConfig{dir});
        ASSERT_NE(s.select(o), nullptr);
    }
    ASSERT_EQ(countFiles(dir, ".json"), 3u);

    // Truncate every cached entry to garbage.
    for (const auto &e : fs::directory_iterator(dir)) {
        std::ofstream out(e.path(), std::ios::trunc);
        out << "{ not json";
    }

    Session s2(prog, SessionConfig{dir});
    auto part = s2.select(o);
    ASSERT_NE(part, nullptr);
    // Corrupt entries were moved aside, then recomputed and
    // rewritten: the cache heals in place.
    EXPECT_EQ(countFiles(dir, ".quarantine"), 3u);
    EXPECT_EQ(countFiles(dir, ".json"), 3u);
    EXPECT_EQ(s2.cacheStats().diskHits(), 0u);

    Session s3(prog, SessionConfig{dir});
    ASSERT_NE(s3.select(o), nullptr);
    EXPECT_EQ(s3.cacheStats().diskHits(), 3u);
}

TEST(RobustDiskCache, InjectedReadFaultQuarantines)
{
    std::string dir = freshDir("read-fault");
    ir::Program prog = test::makeLoopProgram(150);
    StageOptions o = smallOptions();

    {
        Session s(prog, SessionConfig{dir});
        ASSERT_NE(s.transform(o), nullptr);
    }
    ASSERT_GE(countFiles(dir, ".json"), 1u);

    runtime::FaultInjector::instance().configure("cache-read=1");
    Session s2(prog, SessionConfig{dir});
    auto tp = s2.transform(o);
    runtime::FaultInjector::instance().configure("");

    ASSERT_NE(tp, nullptr);
    EXPECT_EQ(countFiles(dir, ".quarantine"), 1u);
}
