/**
 * @file
 * Tests for the differential fuzzing subsystem: the unbiased RNG, the
 * program generator's hard guarantees (validity, termination,
 * determinism, round-tripping), the replay oracles' sensitivity to
 * tampered streams, the end-to-end differential harness, and the
 * shrinker's ability to minimize an injected selector bug.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include <set>

#include "arch/taskstream.h"
#include "fuzz/corpus.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/replay.h"
#include "fuzz/rng.h"
#include "fuzz/shrink.h"
#include "helpers.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"
#include "tasksel/pverify.h"
#include "tasksel/selector.h"

using namespace msc;

namespace {

constexpr uint64_t kRunBudget = 2'000'000;

fuzz::GenOptions
genOpts(uint64_t seed)
{
    fuzz::GenOptions o;
    o.sizeClass = unsigned(seed % 4);
    return o;
}

} // anonymous namespace

TEST(FuzzRng, BoundedDrawsStayInBoundAndCoverIt)
{
    fuzz::Rng rng(test::effectiveSeed(1));
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.bounded(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);       // Every residue reachable.
    EXPECT_EQ(rng.bounded(0), 0u);
    EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(FuzzRng, RangeIsInclusiveOnBothEnds)
{
    fuzz::Rng rng(test::effectiveSeed(2));
    bool lo = false, hi = false;
    for (int i = 0; i < 4000; ++i) {
        int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(FuzzRng, DeterministicPerSeed)
{
    fuzz::Rng a(99), b(99), c(100);
    bool differs = false;
    for (int i = 0; i < 64; ++i) {
        uint64_t va = a.next();
        ASSERT_EQ(va, b.next());
        differs |= va != c.next();
    }
    EXPECT_TRUE(differs);
}

class FuzzGenerator : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzGenerator, ValidDeterministicHaltingRoundTrips)
{
    uint64_t seed = test::effectiveSeed(GetParam());
    ir::Program p = fuzz::generate(seed, genOpts(seed));

    // Valid by construction.
    std::string err;
    ASSERT_TRUE(ir::verify(p, &err)) << err;

    // Deterministic in the seed.
    ir::Program p2 = fuzz::generate(seed, genOpts(seed));
    EXPECT_EQ(ir::toString(p), ir::toString(p2));

    // Textual round trip is byte-stable and keeps the memory image.
    ir::Program p3 = ir::parseProgram(ir::toString(p));
    EXPECT_EQ(ir::toString(p3), ir::toString(p));
    EXPECT_EQ(p3.memWords, p.memWords);
    EXPECT_EQ(p3.initData, p.initData);

    // Halts well inside the harness budget.
    profile::Interpreter in(p);
    in.runQuiet(kRunBudget);
    EXPECT_TRUE(in.halted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzGenerator,
                         ::testing::Range<uint64_t>(0, 24));

TEST(FuzzGenerator, DistinctSeedsProduceDistinctPrograms)
{
    std::set<std::string> texts;
    for (uint64_t s = 0; s < 16; ++s)
        texts.insert(ir::toString(fuzz::generate(s, genOpts(s))));
    EXPECT_GT(texts.size(), 14u);
}

TEST(FuzzReplay, TraceReplayMatchesInterpreter)
{
    for (uint64_t seed : {3u, 11u, 17u}) {
        ir::Program p = fuzz::generate(seed, genOpts(seed));
        profile::Interpreter in(p);
        profile::Trace t = in.trace(kRunBudget);
        ASSERT_TRUE(t.completed);

        fuzz::ReplayResult r = fuzz::replayTrace(p, t);
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.instCount, in.instCount());
        EXPECT_EQ(r.regs, in.regs());
        // r.mem and the interpreter image use different allocators, so
        // compare contents rather than vector objects.
        EXPECT_TRUE(std::equal(r.mem.begin(), r.mem.end(),
                               in.memory().begin(), in.memory().end()));
    }
}

TEST(FuzzReplay, DetectsTamperedBranchOutcome)
{
    ir::Program p = fuzz::generate(5, genOpts(5));
    profile::Interpreter in(p);
    profile::Trace t = in.trace(kRunBudget);
    ASSERT_TRUE(t.completed);

    // Flip the first conditional branch outcome.
    bool flipped = false;
    for (auto &e : t.entries) {
        const ir::Instruction &inst = p.functions[e.ref.func]
            .blocks[e.ref.block].insts[e.ref.index];
        if (inst.op == ir::Opcode::Br || inst.op == ir::Opcode::BrZ) {
            e.taken = !e.taken;
            flipped = true;
            break;
        }
    }
    ASSERT_TRUE(flipped) << "generated program had no branches";

    fuzz::ReplayResult r = fuzz::replayTrace(p, t);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("branch"), std::string::npos) << r.error;
}

TEST(FuzzReplay, DetectsTamperedAddress)
{
    ir::Program p = fuzz::generate(8, genOpts(8));
    profile::Interpreter in(p);
    profile::Trace t = in.trace(kRunBudget);
    ASSERT_TRUE(t.completed);

    bool tampered = false;
    for (auto &e : t.entries) {
        const ir::Instruction &inst = p.functions[e.ref.func]
            .blocks[e.ref.block].insts[e.ref.index];
        if (inst.op == ir::Opcode::Store) {
            e.addr ^= 1;
            tampered = true;
            break;
        }
    }
    ASSERT_TRUE(tampered) << "generated program had no stores";

    fuzz::ReplayResult r = fuzz::replayTrace(p, t);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("address mismatch"), std::string::npos)
        << r.error;
}

TEST(FuzzReplay, DetectsTruncatedTaskStream)
{
    ir::Program p = fuzz::generate(4, genOpts(4));
    auto prof = profile::profileProgram(p, kRunBudget);
    tasksel::SelectionOptions sel;
    sel.strategy = tasksel::Strategy::ControlFlow;
    sel.hoistInductionVars = false;
    tasksel::TaskPartition part = tasksel::selectTasks(p, prof, sel);

    profile::Interpreter in(p);
    profile::Trace t = in.trace(kRunBudget);
    std::vector<arch::DynTask> stream = arch::cutTasks(t, part);
    ASSERT_GT(stream.size(), 1u);

    stream.pop_back();                 // Lose the final task.
    fuzz::ReplayResult r = fuzz::replayTaskStream(p, stream, part);
    EXPECT_FALSE(r.ok);
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzDifferential, AllOraclesAgree)
{
    uint64_t seed = test::effectiveSeed(GetParam());
    ir::Program p = fuzz::generate(seed, genOpts(seed));
    fuzz::DiffResult d = fuzz::runDifferential(p, {}, kRunBudget);
    EXPECT_TRUE(d.ok()) << fuzz::diffKindName(d.kind) << " ["
                        << d.config << "]: " << d.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(100, 124));

namespace {

/**
 * The injected (test-only) selector bug: after real control-flow
 * selection, silently drop the last member block from the first
 * multi-block task — exactly the class of bookkeeping error pverify's
 * coverage invariant exists to catch. Returns true when the tampered
 * partition is (correctly) rejected.
 */
bool
injectedBugTrips(const ir::Program &p)
{
    profile::Profile prof;
    tasksel::TaskPartition part;
    tasksel::SelectionOptions sel;
    sel.strategy = tasksel::Strategy::ControlFlow;
    sel.hoistInductionVars = false;
    try {
        prof = profile::profileProgram(p, kRunBudget);
        part = tasksel::selectTasks(p, prof, sel);
    } catch (const std::exception &) {
        return false;
    }
    for (auto &t : part.tasks) {
        if (t.blocks.size() > 1) {
            t.blocks.pop_back();
            return !tasksel::verifyPartition(part, sel);
        }
    }
    return false;   // No multi-block task: bug has nothing to corrupt.
}

} // anonymous namespace

TEST(FuzzShrink, MinimizesInjectedSelectorBug)
{
    // Find a seed whose program exercises the injected bug.
    ir::Program failing;
    bool found = false;
    for (uint64_t seed = 0; seed < 32 && !found; ++seed) {
        ir::Program p = fuzz::generate(seed, genOpts(seed));
        if (injectedBugTrips(p)) {
            failing = std::move(p);
            found = true;
        }
    }
    ASSERT_TRUE(found)
        << "no generated program produced a multi-block CF task";

    size_t blocks_before = 0;
    for (const auto &f : failing.functions)
        blocks_before += f.blocks.size();
    ASSERT_GT(blocks_before, 10u)
        << "program already minimal; injection demo is vacuous";

    fuzz::ShrinkStats st;
    ir::Program small =
        fuzz::shrinkProgram(failing, injectedBugTrips, &st);

    // The shrunk program still fails, still verifies, and is tiny.
    std::string err;
    ASSERT_TRUE(ir::verify(small, &err)) << err;
    EXPECT_TRUE(injectedBugTrips(small));
    EXPECT_LE(st.blocksAfter, 10u)
        << "shrinker left " << st.blocksAfter << " blocks (from "
        << st.blocksBefore << ")";
    EXPECT_LT(st.instsAfter, st.instsBefore);

    // Without the injection the reproducer is clean end to end: the
    // corpus replays green.
    fuzz::DiffResult d = fuzz::runDifferential(small, {}, kRunBudget);
    EXPECT_TRUE(d.ok()) << fuzz::diffKindName(d.kind) << ": "
                        << d.detail;
}

TEST(FuzzCorpus, ReproducerTextRoundTrips)
{
    ir::Program p = fuzz::generate(21, genOpts(21));
    fuzz::ReproInfo info;
    info.seed = 21;
    info.kind = "state-divergence";
    info.config = "cf";
    info.detail = "mem[5]: reference 1, pipeline 2\nsecond line";
    std::string text = fuzz::reproducerText(p, info);

    // Header is comments only; the parser must accept the whole file.
    ir::Program back = ir::parseProgram(text);
    EXPECT_EQ(ir::toString(back), ir::toString(p));
    // Multi-line details must not escape the comment header.
    EXPECT_EQ(text.find("second line"), std::string::npos);
}
