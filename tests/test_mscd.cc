/**
 * @file
 * Conformance suite for the mscd daemon stack (docs/DAEMON.md):
 *
 *  - framing: round trips, zero-length frames, truncation, oversize
 *    declarations and the exact resync guarantees of each status;
 *  - protocol: request parsing/validation, server-side budget
 *    defaults with per-request overrides, and the contract that any
 *    malformed payload yields exactly one structured error frame
 *    while the connection stays usable;
 *  - dispatch: in-flight dedup on the content-addressed stage keys
 *    (deterministic single-worker scenario plus a multi-threaded
 *    stress run), byte-identical responses for deduped submitters,
 *    compute-once across the whole pool;
 *  - robustness under the daemon: fuel-bombed cells produce budget-*
 *    error frames and the worker survives, cancel reaches a request
 *    mid-sweep over a real pipe, injected disk-cache write faults
 *    stay invisible to clients;
 *  - the sweepExitCode <-> summary-status mapping msctool and mscd
 *    share (satellite regression: the two can never disagree).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "helpers.h"
#include "pipeline/session.h"
#include "report/record.h"
#include "report/sweep.h"
#include "runtime/budget.h"
#include "runtime/error.h"
#include "runtime/fault.h"
#include "serve/dispatch.h"
#include "serve/frame.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace msc;
using namespace msc::serve;
using runtime::ErrorKind;

namespace {

namespace fs = std::filesystem;

std::string
freshDir(const char *name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
                   (std::string("msc-mscd-") + name);
    fs::remove_all(dir);
    return dir.string();
}

/** One encoded frame (header + payload) as raw bytes. */
std::string
frameBytes(const std::string &payload)
{
    StringTransport t("");
    writeFrame(t, payload);
    return t.written();
}

/** Decodes every complete frame in @p bytes as JSON. */
std::vector<report::Json>
parseFrames(const std::string &bytes)
{
    StringTransport t(bytes);
    std::vector<report::Json> out;
    while (true) {
        FrameResult fr = readFrame(t);
        if (fr.status != FrameStatus::Ok)
            break;
        out.push_back(report::Json::parse(fr.payload));
    }
    return out;
}

/** Runs one scripted connection against a fresh server. */
std::vector<report::Json>
serveScript(const std::string &input, ServerConfig cfg = {})
{
    if (cfg.dispatch.jobs == 0)
        cfg.dispatch.jobs = 2;
    Server server(std::move(cfg));
    StringTransport t(input);
    server.serveConnection(t);
    return parseFrames(t.written());
}

/** The standard small run-request payload used throughout. */
std::string
runPayload(const std::string &id, const std::string &workload,
           const std::string &extra = "")
{
    return "{\"id\":\"" + id + "\",\"kind\":\"run\",\"workload\":\"" +
           workload +
           "\",\"scale\":\"small\",\"insts\":10000,\"pus\":2,"
           "\"strategy\":\"bb\"" +
           extra + "}";
}

report::RunSpec
smallSpec(const char *workload, const char *strategy, unsigned pus)
{
    return report::makeSpec(workload,
                            report::strategyFromId(strategy), pus,
                            true, workloads::Scale::Small, 10'000);
}

const report::Json &
findFrame(const std::vector<report::Json> &frames,
          const std::string &id, const std::string &type)
{
    for (const auto &f : frames)
        if (f.get("id").asString() == id &&
            f.get("type").asString() == type)
            return f;
    static report::Json none;
    ADD_FAILURE() << "no frame id=" << id << " type=" << type;
    return none;
}

} // anonymous namespace

// ------------------------------------------------------- framing

TEST(MscdFraming, RoundTripsFrames)
{
    StringTransport t(frameBytes("hello") + frameBytes("") +
                      frameBytes(std::string(100'000, 'x')));

    FrameResult a = readFrame(t);
    EXPECT_EQ(a.status, FrameStatus::Ok);
    EXPECT_EQ(a.payload, "hello");

    // Zero-length frames are Ok at the framing layer (the protocol
    // layer rejects them) — framing must not lose sync.
    FrameResult b = readFrame(t);
    EXPECT_EQ(b.status, FrameStatus::Ok);
    EXPECT_EQ(b.payload, "");

    FrameResult c = readFrame(t);
    EXPECT_EQ(c.status, FrameStatus::Ok);
    EXPECT_EQ(c.payload, std::string(100'000, 'x'));

    EXPECT_EQ(readFrame(t).status, FrameStatus::Eof);
}

TEST(MscdFraming, TruncationInsideHeaderAndPayload)
{
    // Stream ends two bytes into a header.
    StringTransport h(std::string("\x00\x00", 2));
    EXPECT_EQ(readFrame(h).status, FrameStatus::Truncated);

    // Stream ends mid-payload; the declared length is reported.
    std::string cut = frameBytes("abcdef");
    cut.resize(cut.size() - 3);
    StringTransport p(cut);
    FrameResult fr = readFrame(p);
    EXPECT_EQ(fr.status, FrameStatus::Truncated);
    EXPECT_EQ(fr.declared, 6u);
}

TEST(MscdFraming, OversizeDoesNotConsumeAndResyncs)
{
    // A header declaring more than max_len, immediately followed by a
    // valid frame: the oversize result must not swallow the valid
    // frame's bytes.
    std::string huge_header(
        {'\x00', '\x10', '\x00', '\x00'});  // 1 MiB declared
    StringTransport t(huge_header + frameBytes("ok"));

    FrameResult a = readFrame(t, 1024);
    EXPECT_EQ(a.status, FrameStatus::Oversize);
    EXPECT_EQ(a.declared, 1u << 20);

    FrameResult b = readFrame(t, 1024);
    EXPECT_EQ(b.status, FrameStatus::Ok);
    EXPECT_EQ(b.payload, "ok");
}

// ------------------------------------------------ request parsing

TEST(MscdProtocol, ParsesSweepWithMsctoolDefaults)
{
    RequestDefaults d;
    Request r = parseRequest(
        "{\"id\":\"s\",\"kind\":\"sweep\","
        "\"workloads\":[\"compress\"],\"scale\":\"small\"}",
        d);
    // Default strategy and PU axes are msctool sweep's: bb,cf,dd x
    // 4,8 — the same request text means the same grid in both
    // drivers.
    ASSERT_EQ(r.specs.size(), 6u);
    EXPECT_EQ(r.specs[0].id, "compress/bb/4pu/ooo");
    EXPECT_EQ(r.specs[5].id, "compress/dd/8pu/ooo");
    EXPECT_EQ(r.specs[0].opts.trace.traceInsts, 250'000u);
}

TEST(MscdProtocol, BudgetDefaultsMergePerField)
{
    RequestDefaults d;
    d.budget.maxFuel = 7;
    d.budget.wallMs = 5;

    Request plain = parseRequest(runPayload("a", "compress"), d);
    EXPECT_EQ(plain.specs.at(0).opts.budget.maxFuel, 7u);
    EXPECT_EQ(plain.specs.at(0).opts.budget.wallMs, 5u);

    Request over = parseRequest(
        runPayload("b", "compress", ",\"budget\":{\"max_fuel\":9}"),
        d);
    EXPECT_EQ(over.specs.at(0).opts.budget.maxFuel, 9u);
    EXPECT_EQ(over.specs.at(0).opts.budget.wallMs, 5u);
}

TEST(MscdProtocol, RejectsMalformedRequests)
{
    RequestDefaults d;
    auto rejects = [&](const std::string &payload) {
        try {
            parseRequest(payload, d);
            ADD_FAILURE() << "accepted: " << payload;
        } catch (const runtime::StageError &e) {
            EXPECT_EQ(e.info().kind, ErrorKind::InvalidInput);
            EXPECT_EQ(e.info().stage, "protocol");
        }
    };
    rejects("");                                     // zero-length
    rejects("{nope");                                // not JSON
    rejects("[1,2]");                                // not an object
    rejects(std::string("\xff\xfe{}", 4));           // not UTF-8
    rejects("{\"id\":\"x\",\"kind\":\"bogus\"}");    // unknown kind
    rejects("{\"kind\":\"run\",\"workload\":\"compress\"}");  // no id
    rejects("{\"id\":\"\",\"kind\":\"run\",\"workload\":\"c\"}");
    rejects("{\"id\":\"" + std::string(300, 'a') +
            "\",\"kind\":\"run\",\"workload\":\"compress\"}");
    rejects("{\"id\":\"x\",\"kind\":\"cancel\"}");   // no target
    rejects("{\"id\":\"x\",\"kind\":\"run\",\"workload\":\"c\","
            "\"pus\":0}");                           // pus range
    rejects("{\"id\":\"x\",\"kind\":\"run\",\"workload\":\"c\","
            "\"pus\":\"four\"}");                    // pus type
    rejects("{\"id\":\"x\",\"kind\":\"sweep\",\"pus\":[]}");  // empty
    // 18 workloads x 3 strategies x 80 PU configs > MAX_SWEEP_CELLS.
    std::string wide = "{\"id\":\"x\",\"kind\":\"sweep\",\"pus\":[";
    for (int i = 0; i < 80; ++i)
        wide += (i ? "," : "") + std::to_string(i + 1);
    rejects(wide + "]}");
}

TEST(MscdProtocol, ExtractsIdBestEffort)
{
    EXPECT_EQ(extractRequestId("{\"id\":\"r7\",\"kind\":4}"), "r7");
    EXPECT_EQ(extractRequestId("{nope"), "");
    EXPECT_EQ(extractRequestId("{\"id\":42}"), "");
    EXPECT_EQ(extractRequestId("[]"), "");
}

// -------------------------------------- error-frame containment

TEST(MscdServer, MalformedFramesEachGetOneErrorFrameThenUsable)
{
    std::string input =
        frameBytes("{nope") +                            // garbage
        frameBytes(std::string("\xff\xfe{}", 4)) +       // non-UTF-8
        frameBytes("{\"id\":\"u\",\"kind\":\"bogus\"}") +  // kind
        frameBytes("{\"kind\":\"run\"}") +               // missing id
        frameBytes("") +                                 // zero-length
        frameBytes(runPayload("ok1", "compress"));

    std::vector<report::Json> frames = serveScript(input);
    ASSERT_EQ(frames.size(), 7u);

    // One error frame per malformed payload, in input order, id
    // echoed when recoverable.
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(frames[i].get("type").asString(), "error");
        EXPECT_EQ(
            frames[i].get("error").get("kind").asString(),
            "invalid-input");
    }
    EXPECT_EQ(frames[2].get("id").asString(), "u");
    EXPECT_EQ(frames[3].get("id").asString(), "");

    // The connection stayed usable: the valid request ran.
    EXPECT_EQ(frames[5].get("type").asString(), "cell");
    EXPECT_EQ(frames[5].get("run").get("status").asString(), "ok");
    EXPECT_EQ(frames[6].get("type").asString(), "summary");
    EXPECT_EQ(frames[6].get("status").asString(), "ok");
    EXPECT_EQ(frames[6].get("exit_code").asInt(), 0);
}

TEST(MscdServer, OversizeFrameIsReportedAndConnectionContinues)
{
    ServerConfig cfg;
    cfg.maxFrame = 256;
    std::string huge_header({'\x00', '\x10', '\x00', '\x00'});
    std::string input =
        huge_header + frameBytes(runPayload("ok2", "compress"));

    std::vector<report::Json> frames = serveScript(input, std::move(cfg));
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].get("type").asString(), "error");
    EXPECT_NE(frames[0].get("error").get("detail").asString().find(
                  "exceeds maximum"),
              std::string::npos);
    EXPECT_EQ(frames[1].get("type").asString(), "cell");
    EXPECT_EQ(frames[2].get("type").asString(), "summary");
}

TEST(MscdServer, TruncatedFrameGetsFinalErrorFrame)
{
    std::string input = frameBytes(runPayload("ok3", "compress"));
    // Stream dies inside the next header (NUL-safe append).
    input += std::string("\x00\x00\x01", 3);

    // The truncation error frame may overtake the still-running
    // request's frames — responses correlate by id, not order.
    std::vector<report::Json> frames = serveScript(input);
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(findFrame(frames, "ok3", "cell")
                  .get("run")
                  .get("status")
                  .asString(),
              "ok");
    EXPECT_EQ(findFrame(frames, "ok3", "summary")
                  .get("status")
                  .asString(),
              "ok");
    EXPECT_NE(findFrame(frames, "", "error")
                  .get("error")
                  .get("detail")
                  .asString()
                  .find("truncated"),
              std::string::npos);
}

TEST(MscdServer, CancelUnknownTargetReportsNotFound)
{
    std::vector<report::Json> frames = serveScript(frameBytes(
        "{\"id\":\"c\",\"kind\":\"cancel\",\"target\":\"ghost\"}"));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].get("type").asString(), "result");
    EXPECT_EQ(frames[0].get("kind").asString(), "cancel");
    EXPECT_FALSE(frames[0].get("found").asBool());
}

// ------------------------------------------------ dispatch dedup

TEST(MscdDispatch, DedupsInFlightIdenticalCells)
{
    Dispatcher::Config cfg;
    cfg.jobs = 1;
    Dispatcher d(cfg);

    // The single worker is busy with the blocker while both
    // identical submits arrive, so the second is a guaranteed
    // in-flight hit.
    auto blocker = d.submit(smallSpec("compress", "bb", 2), nullptr);
    auto a1 = d.submit(smallSpec("compress", "cf", 2), nullptr);
    auto a2 = d.submit(smallSpec("compress", "cf", 2), nullptr);

    EXPECT_EQ(d.stats().cellsSubmitted, 3u);
    EXPECT_EQ(d.stats().dedupHits, 1u);

    report::RunRecord r1 = a1.get();
    report::RunRecord r2 = a2.get();
    EXPECT_TRUE(blocker.get().ok());
    EXPECT_TRUE(r1.ok());
    EXPECT_EQ(report::runToJson(r1).dump(),
              report::runToJson(r2).dump());

    // After completion the in-flight entry is gone; a repeat is not a
    // dedup hit but computes nothing new (Session cache replay).
    uint64_t computed = d.pool().stats().computed();
    auto a3 = d.submit(smallSpec("compress", "cf", 2), nullptr);
    EXPECT_EQ(report::runToJson(a3.get()).dump(),
              report::runToJson(r1).dump());
    EXPECT_EQ(d.stats().dedupHits, 1u);
    EXPECT_EQ(d.pool().stats().computed(), computed);
}

TEST(MscdDispatch, BudgetIsPartOfTheDedupKey)
{
    Dispatcher::Config cfg;
    cfg.jobs = 1;
    Dispatcher d(cfg);

    report::RunSpec tight = smallSpec("fuelbomb", "bb", 2);
    tight.opts.budget.maxFuel = 200'000;
    report::RunSpec loose = tight;
    loose.opts.budget.maxFuel = 300'000;

    auto blocker = d.submit(smallSpec("compress", "bb", 2), nullptr);
    auto f1 = d.submit(tight, nullptr);
    auto f2 = d.submit(loose, nullptr);  // same artifacts, other fate
    (void)blocker.get();

    EXPECT_EQ(d.stats().dedupHits, 0u);
    EXPECT_EQ(f1.get().error.limit, 200'000u);
    EXPECT_EQ(f2.get().error.limit, 300'000u);
}

TEST(MscdDispatch, StressManyDuplicateSubmittersComputeOnce)
{
    // Reference: each unique cell once, serially.
    uint64_t computed_ref;
    {
        Dispatcher::Config cfg;
        cfg.jobs = 1;
        Dispatcher ref(cfg);
        ref.submit(smallSpec("compress", "bb", 2), nullptr).get();
        ref.submit(smallSpec("compress", "cf", 2), nullptr).get();
        computed_ref = ref.pool().stats().computed();
    }

    Dispatcher::Config cfg;
    cfg.jobs = 4;
    Dispatcher d(cfg);

    constexpr int N = 8;
    std::vector<std::shared_future<report::RunRecord>> futs(2 * N);
    {
        std::vector<std::thread> threads;
        for (int i = 0; i < N; ++i)
            threads.emplace_back([&, i] {
                futs[2 * i] =
                    d.submit(smallSpec("compress", "bb", 2), nullptr);
                futs[2 * i + 1] =
                    d.submit(smallSpec("compress", "cf", 2), nullptr);
            });
        for (auto &t : threads)
            t.join();
    }

    // Whatever the interleaving, the pool computed each unique
    // artifact exactly once — late duplicates that miss the in-flight
    // window are pure cache replays.
    std::string bb = report::runToJson(futs[0].get()).dump();
    std::string cf = report::runToJson(futs[1].get()).dump();
    for (int i = 0; i < N; ++i) {
        EXPECT_EQ(report::runToJson(futs[2 * i].get()).dump(), bb);
        EXPECT_EQ(report::runToJson(futs[2 * i + 1].get()).dump(),
                  cf);
    }
    EXPECT_EQ(d.pool().stats().computed(), computed_ref);
    EXPECT_EQ(d.stats().cellsSubmitted, uint64_t(2 * N));
}

// --------------------------------------------- budgets and faults

TEST(MscdServer, FuelBombedCellYieldsBudgetErrorFrameWorkerSurvives)
{
    std::string input =
        frameBytes(runPayload("bomb", "fuelbomb",
                              ",\"budget\":{\"max_fuel\":200000}")) +
        frameBytes(runPayload("after", "compress"));

    std::vector<report::Json> frames = serveScript(input);

    const report::Json &cell = findFrame(frames, "bomb", "cell");
    EXPECT_EQ(cell.get("run").get("status").asString(), "error");
    EXPECT_EQ(cell.get("run").get("error").get("kind").asString(),
              "budget-fuel");
    EXPECT_TRUE(cell.get("run")
                    .get("error")
                    .get("budget_exhausted")
                    .asBool());

    const report::Json &sum = findFrame(frames, "bomb", "summary");
    EXPECT_EQ(sum.get("status").asString(), "failed");
    EXPECT_EQ(sum.get("exit_code").asInt(), report::EXIT_SWEEP_FAILED);

    // The worker that hit the budget survived to run the next cell.
    const report::Json &ok = findFrame(frames, "after", "cell");
    EXPECT_EQ(ok.get("run").get("status").asString(), "ok");
}

TEST(MscdServer, CacheWriteFaultUnderLoadIsInvisibleToClients)
{
    std::string dir = freshDir("write-fault");
    std::string input = frameBytes(runPayload("f1", "compress"));

    runtime::FaultInjector::instance().configure("cache-write=2");
    ServerConfig cfg1;
    cfg1.dispatch.session.cacheDir = dir;
    std::vector<report::Json> first = serveScript(input, std::move(cfg1));
    runtime::FaultInjector::instance().configure("");

    const report::Json &c1 = findFrame(first, "f1", "cell");
    EXPECT_EQ(c1.get("run").get("status").asString(), "ok");

    // A fresh daemon over the same (possibly partially-written)
    // cache directory serves byte-identical results.
    ServerConfig cfg2;
    cfg2.dispatch.session.cacheDir = dir;
    std::vector<report::Json> second = serveScript(input, std::move(cfg2));
    const report::Json &c2 = findFrame(second, "f1", "cell");
    EXPECT_EQ(c1.get("run").dump(), c2.get("run").dump());
}

// ------------------------------------------------ the stats verb

TEST(MscdStats, StatsVerbReturnsMetricsDocument)
{
    std::vector<report::Json> frames =
        serveScript(frameBytes("{\"id\":\"s1\",\"kind\":\"stats\"}"));
    ASSERT_EQ(frames.size(), 1u);
    const report::Json &res = findFrame(frames, "s1", "result");
    EXPECT_EQ(res.get("kind").asString(), "stats");
    EXPECT_EQ(res.get("protocol_version").asInt(), PROTOCOL_VERSION);

    const report::Json &m = res.get("metrics");
    EXPECT_EQ(m.get("schema").asString(), "msc.metrics");
    EXPECT_EQ(m.get("schema_version").asInt(), 1);
    // The verb counter is incremented before the snapshot is taken,
    // so a stats request observes itself — deterministically.
    EXPECT_EQ(m.get("counters").get("mscd.requests.stats").asUInt(),
              1u);
    EXPECT_EQ(m.get("counters").get("mscd.frames.in").asUInt(), 1u);
    EXPECT_EQ(
        m.get("counters").get("mscd.connections.accepted").asUInt(),
        1u);
    // Latency histograms are pre-registered, present even untouched.
    EXPECT_TRUE(
        m.get("histograms").has("mscd.latency.sweep.done_us"));
    EXPECT_TRUE(m.get("gauges").has("mscd.dispatch.queue_depth"));
    EXPECT_TRUE(m.get("gauges").has("mscd.cache.computed"));
}

TEST(MscdStats, StatsVerbPrometheusFormat)
{
    std::vector<report::Json> frames = serveScript(frameBytes(
        "{\"id\":\"p1\",\"kind\":\"stats\","
        "\"format\":\"prometheus\"}"));
    const report::Json &res = findFrame(frames, "p1", "result");
    EXPECT_FALSE(res.has("metrics"));
    const std::string &text = res.get("prometheus").asString();
    EXPECT_NE(text.find("# TYPE mscd_requests_stats counter"),
              std::string::npos);
    EXPECT_NE(text.find("mscd_requests_stats 1"), std::string::npos);
    EXPECT_NE(
        text.find("mscd_latency_stats_done_us_bucket{le=\"+Inf\"}"),
        std::string::npos);

    // `"format":"json"` is the explicit spelling of the default.
    std::vector<report::Json> jf = serveScript(frameBytes(
        "{\"id\":\"j1\",\"kind\":\"stats\",\"format\":\"json\"}"));
    EXPECT_TRUE(findFrame(jf, "j1", "result").has("metrics"));
}

TEST(MscdStats, StatsVerbMalformedPayloads)
{
    // One error frame per malformed payload, connection stays usable,
    // and the failures are themselves visible in the final snapshot.
    std::vector<report::Json> frames = serveScript(
        frameBytes("{\"kind\":\"stats\"}") +               // no id
        frameBytes("{\"id\":\"b1\",\"kind\":\"stats\","
                   "\"format\":\"xml\"}") +                // bad format
        frameBytes("{\"id\":\"ok\",\"kind\":\"stats\"}"));
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].get("type").asString(), "error");
    EXPECT_EQ(frames[1].get("type").asString(), "error");
    EXPECT_EQ(frames[1].get("id").asString(), "b1");
    EXPECT_NE(frames[1].get("error").get("detail").asString().find(
                  "format"),
              std::string::npos);

    const report::Json &m =
        findFrame(frames, "ok", "result").get("metrics");
    EXPECT_EQ(
        m.get("counters").get("mscd.requests.malformed").asUInt(),
        2u);
    // Malformed stats payloads never count as stats requests.
    EXPECT_EQ(m.get("counters").get("mscd.requests.stats").asUInt(),
              1u);
}

TEST(MscdStats, ServerCountersAfterConnectionCloses)
{
    // The registry outlives the connection: assert the whole ledger
    // through Server::metrics() once serveConnection has returned
    // (all request threads joined — every deterministic counter and
    // gauge has settled).
    ServerConfig cfg;
    cfg.dispatch.jobs = 2;
    Server server(std::move(cfg));
    StringTransport t(
        frameBytes(runPayload("r1", "compress")) +
        frameBytes("{bad json") +
        frameBytes("{\"id\":\"s\",\"kind\":\"stats\"}"));
    server.serveConnection(t);

    obs::MetricsRegistry &m = server.metrics();
    EXPECT_EQ(m.counter("mscd.connections.accepted").value(), 1u);
    EXPECT_EQ(m.counter("mscd.connections.closed").value(), 1u);
    EXPECT_EQ(m.counter("mscd.frames.in").value(), 3u);
    EXPECT_EQ(m.counter("mscd.requests.run").value(), 1u);
    EXPECT_EQ(m.counter("mscd.requests.malformed").value(), 1u);
    EXPECT_EQ(m.counter("mscd.requests.stats").value(), 1u);
    EXPECT_EQ(m.counter("mscd.dispatch.cells_submitted").value(), 1u);
    EXPECT_EQ(m.counter("mscd.dispatch.dedup_hits").value(), 0u);
    // r1: cell + summary; malformed: error; stats: result.
    EXPECT_EQ(m.counter("mscd.frames.out").value(), 4u);
    EXPECT_EQ(m.gauge("mscd.dispatch.queue_depth").value(), 0);
    EXPECT_EQ(m.gauge("mscd.dispatch.cells_inflight").value(), 0);
    EXPECT_EQ(m.gauge("mscd.requests.inflight").value(), 0);
    // The run's full latency chain was observed exactly once.
    EXPECT_EQ(m.histogram("mscd.latency.run.dispatch_us").count(),
              1u);
    EXPECT_EQ(m.histogram("mscd.latency.run.first_frame_us").count(),
              1u);
    EXPECT_EQ(m.histogram("mscd.latency.run.done_us").count(), 1u);
}

TEST(MscdStats, DispatcherSnapshotConsistent)
{
    // snapshot() captures dispatch bookkeeping and cache counters in
    // one consistent read — and dedup'd submits are visible in it.
    obs::MetricsRegistry reg;
    Dispatcher::Config cfg;
    cfg.jobs = 1;
    cfg.metrics = &reg;
    Dispatcher d(std::move(cfg));

    // The single worker is busy with the blocker while the identical
    // submits arrive, so the second is a guaranteed in-flight hit.
    auto blocker = d.submit(smallSpec("compress", "bb", 2), nullptr);
    auto f1 = d.submit(smallSpec("compress", "cf", 2), nullptr);
    auto f2 = d.submit(smallSpec("compress", "cf", 2), nullptr);
    (void)blocker.get();
    f1.get();
    f2.get();
    EXPECT_EQ(f1.get().spec.id, f2.get().spec.id);

    ServiceSnapshot s = d.snapshot();
    EXPECT_EQ(s.dispatch.cellsSubmitted, 3u);
    EXPECT_EQ(s.dispatch.dedupHits, 1u);
    EXPECT_EQ(s.cache.computed(), d.pool().stats().computed());
    EXPECT_GE(s.cache.computed(), 1u);
    // The registry mirrors of the same counters agree.
    EXPECT_EQ(reg.counter("mscd.dispatch.cells_submitted").value(),
              3u);
    EXPECT_EQ(reg.counter("mscd.dispatch.dedup_hits").value(), 1u);
    report::Json doc = reg.toJson();
    EXPECT_EQ(doc.get("gauges").get("mscd.cache.computed").asUInt(),
              s.cache.computed());
}

// ---------------------------------------- cancellation over a pipe

TEST(MscdServer, CancelReachesARequestMidSweep)
{
    std::string dir = freshDir("cancel");

    int to_server[2];
    int to_client[2];
    ASSERT_EQ(::pipe(to_server), 0);
    ASSERT_EQ(::pipe(to_client), 0);

    ServerConfig cfg;
    cfg.dispatch.jobs = 2;
    cfg.dispatch.session.cacheDir = dir;
    Server server(std::move(cfg));
    std::thread srv([&] {
        FdTransport t(to_server[0], to_client[1]);
        server.serveConnection(t);
        ::close(to_client[1]);
    });

    FdTransport client(to_client[0], to_server[1]);
    // No budget: the fuelbomb cell runs until the token trips.
    writeFrame(client,
               "{\"id\":\"c1\",\"kind\":\"sweep\","
               "\"workloads\":[\"fuelbomb\"],"
               "\"strategies\":[\"bb\"],\"pus\":[2],"
               "\"scale\":\"small\",\"insts\":10000}");
    // Duplicate id while c1 is (deterministically) still in flight.
    writeFrame(client, runPayload("c1", "compress"));
    FrameResult dup = readFrame(client);
    ASSERT_EQ(dup.status, FrameStatus::Ok);
    report::Json dupf = report::Json::parse(dup.payload);
    EXPECT_EQ(dupf.get("type").asString(), "error");
    EXPECT_NE(dupf.get("error").get("detail").asString().find(
                  "duplicate request id"),
              std::string::npos);

    writeFrame(client, "{\"id\":\"c2\",\"kind\":\"cancel\","
                       "\"target\":\"c1\"}");

    // Cancel result, cell and summary frames arrive in any order
    // (reader vs request thread).
    std::vector<report::Json> frames;
    for (int i = 0; i < 3; ++i) {
        FrameResult fr = readFrame(client);
        ASSERT_EQ(fr.status, FrameStatus::Ok);
        frames.push_back(report::Json::parse(fr.payload));
    }
    const report::Json &res = findFrame(frames, "c2", "result");
    EXPECT_EQ(res.get("target").asString(), "c1");
    EXPECT_TRUE(res.get("found").asBool());

    const report::Json &cell = findFrame(frames, "c1", "cell");
    EXPECT_EQ(cell.get("run").get("status").asString(), "error");
    EXPECT_EQ(cell.get("run").get("error").get("kind").asString(),
              "cancelled");

    const report::Json &sum = findFrame(frames, "c1", "summary");
    EXPECT_EQ(sum.get("status").asString(), "failed");
    EXPECT_EQ(sum.get("exit_code").asInt(),
              report::EXIT_SWEEP_FAILED);

    // The connection (and its disk cache) survived: a normal request
    // on the same daemon completes cleanly.
    writeFrame(client, runPayload("c3", "compress"));
    std::vector<report::Json> tail;
    for (int i = 0; i < 2; ++i) {
        FrameResult fr = readFrame(client);
        ASSERT_EQ(fr.status, FrameStatus::Ok);
        tail.push_back(report::Json::parse(fr.payload));
    }
    EXPECT_EQ(findFrame(tail, "c3", "cell")
                  .get("run")
                  .get("status")
                  .asString(),
              "ok");

    // Satellite: a stats snapshot taken after the cancelled sweep is
    // internally consistent — the cancellation is fully accounted and
    // no queue depth or in-flight cell leaked.
    writeFrame(client, "{\"id\":\"st\",\"kind\":\"stats\"}");
    FrameResult sf = readFrame(client);
    ASSERT_EQ(sf.status, FrameStatus::Ok);
    report::Json stats = report::Json::parse(sf.payload);
    EXPECT_EQ(stats.get("type").asString(), "result");
    const report::Json &counters = stats.get("metrics").get("counters");
    EXPECT_EQ(counters.get("mscd.requests.cancel").asUInt(), 1u);
    EXPECT_EQ(counters.get("mscd.requests.sweep").asUInt(), 1u);
    // The duplicate-id run and c3 both parsed as run requests.
    EXPECT_EQ(counters.get("mscd.requests.run").asUInt(), 2u);
    EXPECT_EQ(counters.get("mscd.requests.stats").asUInt(), 1u);
    EXPECT_EQ(counters.get("mscd.requests.malformed").asUInt(), 0u);
    // c1's fuelbomb cell + c3's run cell; the duplicate id was
    // rejected before submission.
    EXPECT_EQ(counters.get("mscd.dispatch.cells_submitted").asUInt(),
              2u);
    const report::Json &gauges = stats.get("metrics").get("gauges");
    EXPECT_EQ(gauges.get("mscd.dispatch.queue_depth").asInt(), 0);
    EXPECT_EQ(gauges.get("mscd.dispatch.cells_inflight").asInt(), 0);
    // The cancel's latency was observed on its own histogram.
    EXPECT_EQ(stats.get("metrics")
                  .get("histograms")
                  .get("mscd.latency.cancel.done_us")
                  .get("count")
                  .asUInt(),
              1u);

    ::close(to_server[1]);
    srv.join();
    ::close(to_server[0]);
    ::close(to_client[0]);

    // The cancelled run left no corrupt cache entries behind: a
    // fresh Session over the same directory loads or recomputes
    // without error, never throws CacheCorrupt.
    pipeline::Session s(
        workloads::buildWorkload("compress", workloads::Scale::Small),
        pipeline::SessionConfig{dir});
    report::RunSpec spec = smallSpec("compress", "bb", 2);
    EXPECT_NO_THROW(s.runAll(spec.opts));
}

// ----------------------------- exit-code <-> status mapping pins

TEST(MscdProtocol, SummaryStatusAndSweepExitCodesCannotDisagree)
{
    // The shared mapping, pinned value by value.
    EXPECT_STREQ(report::sweepStatusName(report::EXIT_SWEEP_CLEAN),
                 "ok");
    EXPECT_STREQ(report::sweepStatusName(report::EXIT_SWEEP_FAILED),
                 "failed");
    EXPECT_STREQ(report::sweepStatusName(report::EXIT_SWEEP_PARTIAL),
                 "partial");
    EXPECT_STREQ(report::sweepStatusName(42), "?");

    // A mixed sweep through the daemon path: the summary frame must
    // carry exactly sweepExitCode's verdict on the same records.
    report::RunRecord ok_rec;
    report::RunRecord bad_rec;
    bad_rec.error.kind = ErrorKind::BudgetFuel;
    std::vector<report::RunRecord> mixed = {ok_rec, bad_rec};

    report::Json sum =
        summaryFrame("x", mixed, pipeline::CacheStats{}, 0);
    int exit_code = report::sweepExitCode(mixed);
    EXPECT_EQ(exit_code, report::EXIT_SWEEP_PARTIAL);
    EXPECT_EQ(sum.get("exit_code").asInt(), exit_code);
    EXPECT_EQ(sum.get("status").asString(),
              report::sweepStatusName(exit_code));
    EXPECT_TRUE(sum.get("partial").asBool());
    EXPECT_EQ(sum.get("errors").asUInt(), 1u);
}

// ----------------------------------- byte-identity with msctool

TEST(MscdServer, SweepCellsReassembleToTheMsctoolDocument)
{
    std::vector<report::Json> frames = serveScript(frameBytes(
        "{\"id\":\"s\",\"kind\":\"sweep\","
        "\"workloads\":[\"compress\"],"
        "\"strategies\":[\"bb\",\"cf\"],\"pus\":[2],"
        "\"scale\":\"small\",\"insts\":10000}"));

    std::vector<report::Json> runs(2);
    size_t cells = 0;
    for (auto &f : frames)
        if (f.get("type").asString() == "cell") {
            ++cells;
            EXPECT_EQ(f.get("total").asUInt(), 2u);
            runs.at(f.get("index").asUInt()) = f.get("run");
        }
    ASSERT_EQ(cells, 2u);

    // The exact document msctool sweep --json emits for this grid.
    report::SweepRunner runner(1);
    std::vector<report::RunRecord> recs =
        runner.run({smallSpec("compress", "bb", 2),
                    smallSpec("compress", "cf", 2)});
    EXPECT_EQ(report::sweepDocFromRuns(std::move(runs)).dump(2),
              report::sweepToJson(recs).dump(2));
}

// -------------------------------------------------- stage keys

TEST(MscdDispatch, StageKeyTracksOptionsNotBudgets)
{
    pipeline::Session s(test::makeLoopProgram(100));
    report::RunSpec a = smallSpec("compress", "bb", 2);
    report::RunSpec b = smallSpec("compress", "bb", 4);

    uint64_t ka = s.stageKey(pipeline::StageKind::Simulate, a.opts);
    EXPECT_EQ(ka, s.stageKey(pipeline::StageKind::Simulate, a.opts));
    EXPECT_NE(ka, s.stageKey(pipeline::StageKind::Simulate, b.opts));

    // Budgets are outside artifact keys by design (the dispatcher
    // mixes them in separately).
    report::RunSpec budgeted = a;
    budgeted.opts.budget.maxFuel = 12345;
    EXPECT_EQ(ka, s.stageKey(pipeline::StageKind::Simulate,
                             budgeted.opts));
}
