/**
 * @file
 * Tests for the src/report sweep/report subsystem: the JSON
 * value/parser round-trip, the documented metrics schema
 * (docs/METRICS.md), CSV flattening, and the SweepRunner determinism
 * contract (--jobs N output identical to serial).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>

#include "arch/stats.h"
#include "report/json.h"
#include "report/record.h"
#include "report/sweep.h"
#include "runtime/error.h"

using namespace msc;
using report::Json;

namespace {

/** One small, fast pipeline run shared by the schema tests. */
const report::RunRecord &
smallRecord()
{
    static const report::RunRecord r = report::runSpec(
        report::makeSpec("compress", tasksel::Strategy::DataDependence,
                         2, true, workloads::Scale::Small, 10'000));
    return r;
}

std::vector<report::RunSpec>
smallGrid()
{
    std::vector<report::RunSpec> specs;
    for (const char *w : {"compress", "li", "tomcatv"})
        for (auto s : {tasksel::Strategy::BasicBlock,
                       tasksel::Strategy::DataDependence})
            specs.push_back(report::makeSpec(w, s, 2, true,
                                             workloads::Scale::Small,
                                             10'000));
    return specs;
}

} // anonymous namespace

// ---------------------------------------------------------------- Json

TEST(Json, ScalarRoundTrip)
{
    Json o = Json::object();
    o["null"] = Json();
    o["t"] = true;
    o["f"] = false;
    o["int"] = int64_t(-42);
    o["uint"] = uint64_t(18'446'744'073'709'551'615ull);  // > INT64_MAX
    o["dbl"] = 0.1;
    o["whole_dbl"] = 3.0;   // must stay a double through the trip
    o["str"] = "quote \" backslash \\ newline \n tab \t";
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    arr.push(Json::object());
    o["arr"] = std::move(arr);

    for (int indent : {0, 2, 4}) {
        Json back = Json::parse(o.dump(indent));
        EXPECT_EQ(o, back) << "indent=" << indent;
    }

    Json back = Json::parse(o.dump());
    EXPECT_EQ(back.get("uint").asUInt(),
              18'446'744'073'709'551'615ull);
    EXPECT_EQ(back.get("int").asInt(), -42);
    EXPECT_DOUBLE_EQ(back.get("dbl").asDouble(), 0.1);
    EXPECT_EQ(back.get("whole_dbl").kind(), Json::Kind::Double);
    EXPECT_EQ(back.get("str").asString(),
              "quote \" backslash \\ newline \n tab \t");
}

TEST(Json, PreservesInsertionOrder)
{
    Json o = Json::object();
    o["zebra"] = 1;
    o["apple"] = 2;
    o["mango"] = 3;
    std::string s = o.dump();
    EXPECT_LT(s.find("zebra"), s.find("apple"));
    EXPECT_LT(s.find("apple"), s.find("mango"));
    // Parse preserves the document's order too.
    EXPECT_EQ(Json::parse(s).dump(), s);
}

TEST(Json, IntDoubleDistinctness)
{
    EXPECT_NE(Json(int64_t(3)), Json(3.0));
    EXPECT_EQ(Json::parse("3").kind(), Json::Kind::Int);
    EXPECT_EQ(Json::parse("3.0").kind(), Json::Kind::Double);
    EXPECT_EQ(Json::parse("3.0").dump(), "3.0");
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\":1} extra"), std::runtime_error);
    EXPECT_THROW(Json::parse("nul"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, DeepNestingHitsRecursionLimit)
{
    // Just inside the cap parses; past it must throw instead of
    // overflowing the parser's stack.
    auto nested = [](int depth) {
        return std::string(size_t(depth), '[') + "1" +
               std::string(size_t(depth), ']');
    };
    Json ok = Json::parse(nested(199));
    EXPECT_EQ(ok.kind(), Json::Kind::Array);
    EXPECT_THROW(Json::parse(nested(201)), std::runtime_error);
    EXPECT_THROW(Json::parse(nested(100'000)), std::runtime_error);

    // Mixed object/array nesting counts against the same budget.
    std::string mixed;
    for (int i = 0; i < 150; ++i)
        mixed += "{\"k\":[";
    EXPECT_THROW(Json::parse(mixed), std::runtime_error);
}

TEST(Json, InvalidNumbers)
{
    EXPECT_THROW(Json::parse("-"), std::runtime_error);
    EXPECT_THROW(Json::parse("1.2.3"), std::runtime_error);
    EXPECT_THROW(Json::parse("1e"), std::runtime_error);
    EXPECT_THROW(Json::parse("--5"), std::runtime_error);
    EXPECT_THROW(Json::parse("+1"), std::runtime_error);
    EXPECT_THROW(Json::parse("0x10"), std::runtime_error);

    // Out-of-range integer literals degrade to double, not error.
    Json big = Json::parse("123456789012345678901234567890");
    EXPECT_EQ(big.kind(), Json::Kind::Double);
    // Full unsigned range stays integral.
    EXPECT_EQ(Json::parse("18446744073709551615").asUInt(),
              18446744073709551615ull);
    EXPECT_EQ(Json::parse("-9223372036854775808").asInt(),
              std::numeric_limits<int64_t>::min());
}

TEST(Json, TrailingGarbageRejected)
{
    EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
    EXPECT_THROW(Json::parse("[] []"), std::runtime_error);
    EXPECT_THROW(Json::parse("true false"), std::runtime_error);
    EXPECT_THROW(Json::parse("{} ,"), std::runtime_error);
    // Trailing whitespace alone is fine.
    EXPECT_EQ(Json::parse(" {\"a\": 1} \n").get("a").asInt(), 1);
}

TEST(Json, DuplicateKeysLastWins)
{
    Json v = Json::parse("{\"a\": 1, \"b\": 2, \"a\": 3}");
    EXPECT_EQ(v.get("a").asInt(), 3);
    // The duplicate overwrites in place: two members, order kept.
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v.members()[0].first, "a");
    EXPECT_EQ(v.members()[1].first, "b");
}

// -------------------------------------------------------------- Schema

TEST(Schema, EnvelopeAndRoundTrip)
{
    Json doc = report::sweepToJson({smallRecord()});
    EXPECT_EQ(doc.get("schema").asString(), report::SCHEMA_NAME);
    EXPECT_EQ(doc.get("schema_version").asInt(),
              report::SCHEMA_VERSION);
    ASSERT_EQ(doc.get("runs").size(), 1u);

    // dump → parse → structural equality: nothing the emitter writes
    // is lost or altered by a round trip through text.
    Json back = Json::parse(doc.dump(2));
    EXPECT_EQ(doc, back);
    // Compact and pretty forms parse to the same value.
    EXPECT_EQ(Json::parse(doc.dump()), back);
}

TEST(Schema, DocumentedFieldsPresent)
{
    const report::RunRecord &rec = smallRecord();
    Json run = report::runToJson(rec);

    EXPECT_EQ(run.get("id").asString(), rec.spec.id);
    EXPECT_EQ(run.get("workload").asString(), "compress");

    const Json &cfg = run.get("config");
    for (const char *k : {"strategy", "pus", "out_of_order",
                          "max_targets", "task_size_heuristic", "scale",
                          "trace_insts"})
        EXPECT_TRUE(cfg.has(k)) << "config." << k;
    EXPECT_EQ(cfg.get("strategy").asString(), "dd");
    EXPECT_EQ(cfg.get("pus").asUInt(), 2u);
    EXPECT_EQ(cfg.get("scale").asString(), "small");

    const Json &m = run.get("metrics");
    for (const char *k : {"cycles", "retired_insts", "retired_tasks",
                          "ipc", "cycle_breakdown",
                          "occupied_pu_cycles", "idle_pu_cycles",
                          "prediction", "memory", "tasks",
                          "window_span", "partition"})
        EXPECT_TRUE(m.has(k)) << "metrics." << k;

    // Every CycleKind appears under its stable id, and the breakdown
    // sums to the occupied-cycle total.
    const Json &buckets = m.get("cycle_breakdown");
    uint64_t sum = 0;
    for (size_t i = 0; i < arch::NUM_CYCLE_KINDS; ++i) {
        const char *id = arch::cycleKindId(arch::CycleKind(i));
        ASSERT_TRUE(buckets.has(id)) << id;
        sum += buckets.get(id).asUInt();
    }
    EXPECT_EQ(buckets.size(), arch::NUM_CYCLE_KINDS);
    EXPECT_EQ(sum, m.get("occupied_pu_cycles").asUInt());

    for (const char *k : {"task_predictions", "task_mispredictions",
                          "task_mispredict_pct",
                          "per_branch_mispredict_pct",
                          "branch_predictions",
                          "branch_mispredictions",
                          "branch_mispredict_pct"})
        EXPECT_TRUE(m.get("prediction").has(k)) << "prediction." << k;
    for (const char *k : {"violations", "tasks_squashed_ctrl",
                          "tasks_squashed_mem", "sync_stall_cycles",
                          "arb_overflow_stalls", "l1i_accesses",
                          "l1i_misses", "l1d_accesses", "l1d_misses"})
        EXPECT_TRUE(m.get("memory").has(k)) << "memory." << k;
    for (const char *k : {"dyn_tasks", "avg_task_insts",
                          "avg_task_ctl_insts", "dyn_tasks_cut"})
        EXPECT_TRUE(m.get("tasks").has(k)) << "tasks." << k;
    for (const char *k : {"measured", "formula"})
        EXPECT_TRUE(m.get("window_span").has(k)) << "window_span." << k;
    for (const char *k : {"static_tasks", "avg_static_insts",
                          "included_calls", "loops_unrolled",
                          "ivs_hoisted"})
        EXPECT_TRUE(m.get("partition").has(k)) << "partition." << k;

    // Values match the in-memory stats they were flattened from.
    EXPECT_EQ(m.get("cycles").asUInt(), rec.stats.cycles);
    EXPECT_EQ(m.get("retired_insts").asUInt(), rec.stats.retiredInsts);
    EXPECT_DOUBLE_EQ(m.get("ipc").asDouble(), rec.stats.ipc());
    EXPECT_EQ(m.get("partition").get("static_tasks").asUInt(),
              rec.staticTasks);
    EXPECT_DOUBLE_EQ(
        m.get("window_span").get("formula").asDouble(),
        rec.stats.formulaWindowSpan(rec.spec.opts.config.numPUs));
}

TEST(Schema, CsvMatchesJsonFlattening)
{
    std::vector<report::RunRecord> recs = {smallRecord(),
                                           smallRecord()};
    std::string csv = report::sweepToCsv(recs);

    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < csv.size()) {
        size_t nl = csv.find('\n', pos);
        lines.push_back(csv.substr(pos, nl - pos));
        pos = nl + 1;
    }
    ASSERT_EQ(lines.size(), 3u);   // header + 2 rows
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(lines[0]), commas(lines[1]));
    EXPECT_EQ(lines[1], lines[2]);   // identical records → rows
    EXPECT_EQ(lines[0].substr(0, 12), "id,workload,");
    EXPECT_NE(lines[0].find("metrics.ipc"), std::string::npos);
    EXPECT_NE(lines[0].find("metrics.cycle_breakdown.useful"),
              std::string::npos);
}

// --------------------------------------------------------- SweepRunner

TEST(SweepRunner, ParallelIdenticalToSerial)
{
    std::vector<report::RunSpec> specs = smallGrid();

    std::vector<report::RunRecord> serial =
        report::SweepRunner(1).run(specs);
    std::vector<report::RunRecord> parallel =
        report::SweepRunner(4).run(specs);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    // Results come back in input order...
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(serial[i].spec.id, specs[i].id);
        EXPECT_EQ(parallel[i].spec.id, specs[i].id);
    }
    // ...and the serialized sweeps are byte-identical.
    EXPECT_EQ(report::sweepToJson(serial).dump(2),
              report::sweepToJson(parallel).dump(2));
    EXPECT_EQ(report::sweepToCsv(serial),
              report::sweepToCsv(parallel));
}

TEST(SweepRunner, IsolatesPerCellFailures)
{
    std::vector<report::RunSpec> specs = smallGrid();
    specs[1].workload = "no-such-workload";

    std::vector<report::RunRecord> recs =
        report::SweepRunner(3).run(specs);

    ASSERT_EQ(recs.size(), specs.size());
    EXPECT_FALSE(recs[1].ok());
    EXPECT_EQ(recs[1].error.kind, runtime::ErrorKind::InvalidInput);
    EXPECT_EQ(recs[1].error.workload, "no-such-workload");
    for (size_t i = 0; i < recs.size(); ++i) {
        if (i != 1)
            EXPECT_TRUE(recs[i].ok()) << recs[i].spec.id;
    }
    EXPECT_EQ(report::sweepExitCode(recs),
              report::EXIT_SWEEP_PARTIAL);

    Json doc = report::sweepToJson(recs);
    EXPECT_TRUE(doc.get("partial").asBool());
    EXPECT_EQ(doc.get("runs").at(1).get("status").asString(), "error");
    EXPECT_EQ(doc.get("runs").at(1).get("error").get("kind").asString(),
              "invalid-input");
    EXPECT_EQ(doc.get("runs").at(0).get("status").asString(), "ok");

    // The CSV stays rectangular: every row has the union header's
    // column count.
    std::string csv = report::sweepToCsv(recs);
    size_t header_cols = 1;
    std::string first_line = csv.substr(0, csv.find('\n'));
    for (char ch : first_line)
        header_cols += ch == ',';
    size_t pos = first_line.size() + 1;
    while (pos < csv.size()) {
        size_t end = csv.find('\n', pos);
        size_t cols = 1;
        for (size_t k = pos; k < end; ++k)
            cols += csv[k] == ',';
        EXPECT_EQ(cols, header_cols);
        pos = end + 1;
    }
}

TEST(SweepRunner, EmptySweep)
{
    EXPECT_TRUE(report::SweepRunner(4).run({}).empty());
    Json doc = report::sweepToJson({});
    EXPECT_EQ(doc.get("runs").size(), 0u);
    EXPECT_TRUE(report::sweepToCsv({}).empty());
}

TEST(SweepRunner, ProgressCallbackCoversAllRuns)
{
    std::vector<report::RunSpec> specs = smallGrid();
    std::atomic<size_t> calls{0};
    size_t total_seen = 0;
    std::mutex mu;
    report::SweepRunner(2).run(specs, [&](size_t done, size_t total) {
        calls.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        total_seen = total;
        EXPECT_LE(done, total);
    });
    EXPECT_EQ(calls.load(), specs.size());
    EXPECT_EQ(total_seen, specs.size());
}
