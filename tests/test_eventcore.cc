/**
 * @file
 * The cycle/event core equivalence contract (docs/PERFORMANCE.md).
 *
 * CoreMode::Event must be an invisible optimization: for any
 * (partition, task stream, SimConfig), every observable output —
 * every SimStats field, the Perfetto trace document, and the exact
 * simulated cycle at which a Governor budget trips — must be
 * byte-identical to CoreMode::Cycle. The one deliberate exception is
 * SimStats::eventSkippedCycles, the diagnostic that proves skipping
 * engaged at all. These tests drive arch::simulate directly (not
 * through pipeline::Session, whose artifact cache would hand the
 * second core the first core's cached result and make the comparison
 * vacuous — coreMode is deliberately absent from artifact keys).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/processor.h"
#include "arch/taskstream.h"
#include "fuzz/corpus.h"
#include "helpers.h"
#include "ir/verifier.h"
#include "obs/perfetto.h"
#include "profile/interpreter.h"
#include "profile/profiler.h"
#include "runtime/budget.h"
#include "tasksel/selector.h"
#include "workloads/workload.h"

#ifndef MSC_CORPUS_DIR
#error "MSC_CORPUS_DIR must point at the committed corpus directory"
#endif

using namespace msc;
using namespace msc::arch;
using tasksel::Strategy;

namespace {

struct Prepared
{
    ir::Program prog;
    tasksel::TaskPartition part;
    profile::Trace trace;
    std::vector<DynTask> tasks;
};

Prepared
prepare(ir::Program p, Strategy s)
{
    Prepared out{std::move(p), {}, {}, {}};
    profile::Profile prof = profile::profileProgram(out.prog);
    tasksel::SelectionOptions opts;
    opts.strategy = s;
    out.part = tasksel::selectTasks(out.prog, prof, opts);
    profile::Interpreter in(out.prog);
    out.trace = in.trace();
    out.tasks = cutTasks(out.trace, out.part);
    return out;
}

/** Field-wise SimStats equality, excluding only eventSkippedCycles.
 *  Spelled out per field so a divergence names the culprit. */
void
expectStatsEqual(const SimStats &c, const SimStats &e,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(c.cycles, e.cycles);
    EXPECT_EQ(c.retiredInsts, e.retiredInsts);
    EXPECT_EQ(c.retiredTasks, e.retiredTasks);
    EXPECT_EQ(c.buckets.counts, e.buckets.counts);
    EXPECT_EQ(c.idlePuCycles, e.idlePuCycles);
    EXPECT_EQ(c.taskPredictions, e.taskPredictions);
    EXPECT_EQ(c.taskMispredictions, e.taskMispredictions);
    EXPECT_EQ(c.branchPredictions, e.branchPredictions);
    EXPECT_EQ(c.branchMispredictions, e.branchMispredictions);
    EXPECT_EQ(c.memViolations, e.memViolations);
    EXPECT_EQ(c.tasksSquashedCtrl, e.tasksSquashedCtrl);
    EXPECT_EQ(c.tasksSquashedMem, e.tasksSquashedMem);
    EXPECT_EQ(c.syncStallCycles, e.syncStallCycles);
    EXPECT_EQ(c.dynTasks, e.dynTasks);
    EXPECT_EQ(c.dynTaskInsts, e.dynTaskInsts);
    EXPECT_EQ(c.dynTaskCtlInsts, e.dynTaskCtlInsts);
    // Bit-exact: both cores sum the same integers in the same order.
    EXPECT_EQ(c.measuredWindowSpan, e.measuredWindowSpan);
    EXPECT_EQ(c.l1iAccesses, e.l1iAccesses);
    EXPECT_EQ(c.l1iMisses, e.l1iMisses);
    EXPECT_EQ(c.l1dAccesses, e.l1dAccesses);
    EXPECT_EQ(c.l1dMisses, e.l1dMisses);
    EXPECT_EQ(c.arbOverflowStalls, e.arbOverflowStalls);
    EXPECT_EQ(c.extWaitByReg, e.extWaitByReg);
    EXPECT_EQ(c.puOccupiedCycles, e.puOccupiedCycles);
}

/** Runs one prepared workload under both cores (with Perfetto sinks)
 *  and asserts the whole observable contract. */
void
expectCoresAgree(const Prepared &pr, SimConfig cfg,
                 const std::string &what)
{
    cfg.coreMode = CoreMode::Cycle;
    obs::PerfettoTraceWriter wc(cfg.numPUs, "eventcore");
    SimStats c = simulate(pr.part, pr.tasks, cfg, &wc, nullptr);

    cfg.coreMode = CoreMode::Event;
    obs::PerfettoTraceWriter we(cfg.numPUs, "eventcore");
    SimStats e = simulate(pr.part, pr.tasks, cfg, &we, nullptr);

    expectStatsEqual(c, e, what);
    EXPECT_EQ(c.eventSkippedCycles, 0u) << what;
    EXPECT_EQ(wc.str(), we.str()) << what << ": trace diverged";
}

} // anonymous namespace

TEST(EventCore, EventIsTheDefaultCore)
{
    EXPECT_EQ(SimConfig{}.coreMode, CoreMode::Event);
    EXPECT_EQ(SimConfig::paperConfig(4).coreMode, CoreMode::Event);
}

TEST(EventCore, CoreModeParsesAndNames)
{
    CoreMode m;
    ASSERT_TRUE(parseCoreMode("cycle", m));
    EXPECT_EQ(m, CoreMode::Cycle);
    ASSERT_TRUE(parseCoreMode("event", m));
    EXPECT_EQ(m, CoreMode::Event);
    EXPECT_FALSE(parseCoreMode("warp", m));
    EXPECT_STREQ(coreModeName(CoreMode::Cycle), "cycle");
    EXPECT_STREQ(coreModeName(CoreMode::Event), "event");
}

/** Hand-built programs x strategies x machine shapes. The configs
 *  cover out-of-order and in-order PUs, 1/4/8 PUs, and a starved ARB
 *  (overflow-stall paths). */
TEST(EventCore, HandBuiltProgramsAgree)
{
    struct Shape
    {
        const char *name;
        SimConfig cfg;
    };
    std::vector<Shape> shapes;
    shapes.push_back({"4pu/ooo", SimConfig::paperConfig(4, true)});
    shapes.push_back({"8pu/ino", SimConfig::paperConfig(8, false)});
    shapes.push_back({"1pu/ooo", SimConfig::paperConfig(1, true)});
    SimConfig starved = SimConfig::paperConfig(2, true);
    starved.arbEntriesPerPU = 2;
    shapes.push_back({"2pu/tiny-arb", starved});

    struct Prog
    {
        const char *name;
        ir::Program p;
    };
    std::vector<Prog> progs;
    progs.push_back({"loop", test::makeLoopProgram(80)});
    progs.push_back({"diamond", test::makeDiamondProgram(64)});
    progs.push_back({"call", test::makeCallProgram(48)});
    progs.push_back({"conflict", test::makeConflictProgram(64)});

    for (const auto &pg : progs) {
        for (Strategy s : {Strategy::BasicBlock, Strategy::ControlFlow,
                           Strategy::DataDependence}) {
            Prepared pr = prepare(pg.p, s);
            for (const auto &sh : shapes) {
                expectCoresAgree(pr, sh.cfg,
                                 std::string(pg.name) + "/" +
                                     std::to_string(int(s)) + "/" +
                                     sh.name);
            }
        }
    }
}

/** Two real workloads at test scale, all three paper strategies. */
TEST(EventCore, WorkloadsAgree)
{
    for (const char *name : {"compress", "tomcatv"}) {
        ir::Program p =
            workloads::buildWorkload(name, workloads::Scale::Small);
        for (Strategy s : {Strategy::BasicBlock, Strategy::ControlFlow,
                           Strategy::DataDependence}) {
            Prepared pr = prepare(p, s);
            expectCoresAgree(pr, SimConfig::paperConfig(4, true),
                             std::string(name) + "/4pu");
            expectCoresAgree(pr, SimConfig::paperConfig(8, false),
                             std::string(name) + "/8pu");
        }
    }
}

/** The event core must actually skip on a memory-bound workload —
 *  otherwise every equivalence above is vacuously testing the same
 *  stepping loop twice. */
TEST(EventCore, SkippingEngages)
{
    Prepared pr = prepare(test::makeLoopProgram(200),
                          Strategy::ControlFlow);
    SimConfig cfg = SimConfig::paperConfig(4, true);
    cfg.coreMode = CoreMode::Event;
    SimStats e = simulate(pr.part, pr.tasks, cfg);
    EXPECT_GT(e.eventSkippedCycles, 0u);
    EXPECT_LT(e.eventSkippedCycles, e.cycles);

    cfg.coreMode = CoreMode::Cycle;
    SimStats c = simulate(pr.part, pr.tasks, cfg);
    EXPECT_EQ(c.eventSkippedCycles, 0u);
}

/**
 * Governor cycle budgets must trip at the same simulated cycle in
 * both cores: the event core clamps its jumps to the budget cycle
 * and to pulse boundaries so administrative checks fire exactly
 * where the stepping core performs them.
 */
TEST(EventCore, GovernorBudgetTripsAtSameCycle)
{
    Prepared pr = prepare(test::makeLoopProgram(200),
                          Strategy::ControlFlow);
    SimConfig cfg = SimConfig::paperConfig(4, true);

    // Find the natural length, then budget to a fraction of it.
    cfg.coreMode = CoreMode::Cycle;
    uint64_t natural = simulate(pr.part, pr.tasks, cfg).cycles;
    ASSERT_GT(natural, 100u);

    runtime::ExecBudget budget;
    budget.maxSimCycles = natural / 2;

    auto tripCycle = [&](CoreMode m) -> std::string {
        SimConfig c = cfg;
        c.coreMode = m;
        runtime::Governor gov(budget);
        try {
            simulate(pr.part, pr.tasks, c, nullptr, &gov);
        } catch (const runtime::StageError &e) {
            return e.what();
        }
        return "(no trip)";
    };

    std::string cycleErr = tripCycle(CoreMode::Cycle);
    std::string eventErr = tripCycle(CoreMode::Event);
    EXPECT_NE(cycleErr, "(no trip)");
    // Identical rendered errors imply the same trip cycle: the
    // message embeds the observed cycle count.
    EXPECT_EQ(cycleErr, eventErr);
}

/** Every committed fuzz reproducer replays identically on both
 *  cores (the corpus is the regression net for core divergences). */
TEST(EventCore, FuzzCorpusAgrees)
{
    std::vector<std::string> files = fuzz::corpusFiles(MSC_CORPUS_DIR);
    ASSERT_FALSE(files.empty());
    for (const auto &f : files) {
        ir::Program p = fuzz::loadReproducer(f);
        std::string err;
        ASSERT_TRUE(ir::verify(p, &err)) << f << ": " << err;
        for (Strategy s :
             {Strategy::BasicBlock, Strategy::ControlFlow}) {
            Prepared pr = prepare(p, s);
            expectCoresAgree(pr, SimConfig::paperConfig(4, true), f);
        }
    }
}
