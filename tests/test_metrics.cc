/**
 * @file
 * Unit suite for the obs::MetricsRegistry service-telemetry layer
 * (docs/OBSERVABILITY.md):
 *
 *  - registration is compute-once and thread-safe: N threads racing
 *    counter("x") all receive the same object and no increment is
 *    lost;
 *  - histogram bucket assignment at the boundaries: observe(v) lands
 *    in the first bucket whose upper bound `le` >= v, the implicit
 *    +Inf bucket catches overflow, and the JSON buckets are
 *    cumulative with `"+Inf"` last;
 *  - snapshots are deterministic: the same operations produce the
 *    same bytes, twice, from both renderers;
 *  - the Prometheus renderer sanitizes dotted names and emits the
 *    `_bucket`/`_sum`/`_count` series with TYPE headers;
 *  - callback gauges read externally-owned values at snapshot time.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

using namespace msc;
using obs::MetricsRegistry;
using report::Json;

TEST(Metrics, CounterAndGaugeBasics)
{
    MetricsRegistry reg;
    obs::Counter &c = reg.counter("a.count");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name, same object.
    EXPECT_EQ(&reg.counter("a.count"), &c);

    obs::Gauge &g = reg.gauge("a.level");
    g.set(7);
    g.add(-10);
    EXPECT_EQ(g.value(), -3);
    EXPECT_EQ(&reg.gauge("a.level"), &g);
}

TEST(Metrics, RegistrationIsComputeOnceUnderContention)
{
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIncs = 1000;
    std::atomic<obs::Counter *> first{nullptr};
    std::atomic<int> mismatches{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            obs::Counter &c = reg.counter("contended");
            obs::Counter *expected = nullptr;
            if (!first.compare_exchange_strong(expected, &c) &&
                expected != &c)
                mismatches.fetch_add(1);
            obs::Histogram &h = reg.histogram("contended.h");
            for (int i = 0; i < kIncs; ++i) {
                c.inc();
                h.observe(uint64_t(i));
            }
        });
    for (auto &th : threads)
        th.join();

    // Every thread saw the one true counter, and no update was lost.
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(reg.counter("contended").value(),
              uint64_t(kThreads) * kIncs);
    EXPECT_EQ(reg.histogram("contended.h").count(),
              uint64_t(kThreads) * kIncs);
}

TEST(Metrics, HistogramBucketBoundaries)
{
    obs::Histogram h({10, 100});
    // A value exactly on a bound belongs to that bound's bucket
    // (le semantics); one past it falls through to the next.
    h.observe(0);    // le=10
    h.observe(10);   // le=10 (boundary)
    h.observe(11);   // le=100
    h.observe(100);  // le=100 (boundary)
    h.observe(101);  // +Inf
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);  // the implicit +Inf bucket
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101);
}

TEST(Metrics, HistogramRejectsNonIncreasingBounds)
{
    EXPECT_THROW(obs::Histogram({10, 10}), std::invalid_argument);
    EXPECT_THROW(obs::Histogram({100, 10}), std::invalid_argument);
}

TEST(Metrics, JsonSnapshotShape)
{
    MetricsRegistry reg;
    reg.counter("c.one").inc(3);
    reg.gauge("g.depth").set(2);
    obs::Histogram &h = reg.histogram("lat", {10, 100});
    h.observe(5);
    h.observe(50);
    h.observe(500);

    Json doc = reg.toJson();
    EXPECT_EQ(doc.get("schema").asString(),
              obs::METRICS_SCHEMA_NAME);
    EXPECT_EQ(doc.get("schema_version").asInt(),
              obs::METRICS_SCHEMA_VERSION);
    EXPECT_EQ(doc.get("counters").get("c.one").asUInt(), 3u);
    EXPECT_EQ(doc.get("gauges").get("g.depth").asInt(), 2);

    const Json &hist = doc.get("histograms").get("lat");
    EXPECT_EQ(hist.get("count").asUInt(), 3u);
    EXPECT_EQ(hist.get("sum").asUInt(), 555u);
    const Json &buckets = hist.get("buckets");
    ASSERT_EQ(buckets.size(), 3u);
    // Cumulative counts, +Inf last and equal to the total.
    EXPECT_EQ(buckets.at(0).get("le").asUInt(), 10u);
    EXPECT_EQ(buckets.at(0).get("count").asUInt(), 1u);
    EXPECT_EQ(buckets.at(1).get("le").asUInt(), 100u);
    EXPECT_EQ(buckets.at(1).get("count").asUInt(), 2u);
    EXPECT_EQ(buckets.at(2).get("le").asString(), "+Inf");
    EXPECT_EQ(buckets.at(2).get("count").asUInt(), 3u);
}

TEST(Metrics, SnapshotsAreDeterministic)
{
    // Two registries fed the same operations render the same bytes,
    // and a quiescent registry renders the same bytes twice.
    auto build = [] {
        auto reg = std::make_unique<MetricsRegistry>();
        reg->gauge("z.last").set(9);
        reg->counter("a.first").inc(2);
        reg->histogram("m.lat", {10, 100}).observe(42);
        reg->counter("b.second").inc(1);
        return reg;
    };
    auto r1 = build();
    auto r2 = build();
    EXPECT_EQ(r1->toJson().dump(), r2->toJson().dump());
    EXPECT_EQ(r1->toJson().dump(), r1->toJson().dump());
    EXPECT_EQ(r1->toPrometheus(), r2->toPrometheus());

    // Registration order doesn't leak into the snapshot: names
    // iterate sorted.
    Json doc = r1->toJson();
    const Json &counters = doc.get("counters");
    EXPECT_EQ(counters.members().at(0).first, "a.first");
    EXPECT_EQ(counters.members().at(1).first, "b.second");
}

TEST(Metrics, PrometheusRendering)
{
    MetricsRegistry reg;
    reg.counter("mscd.requests.run").inc(4);
    reg.gauge("mscd.queue-depth").set(1);
    obs::Histogram &h = reg.histogram("mscd.lat.us", {10, 100});
    h.observe(7);
    h.observe(70);
    h.observe(700);

    std::string text = reg.toPrometheus();
    // Dotted (and dashed) names sanitize to underscores.
    EXPECT_NE(text.find("# TYPE mscd_requests_run counter"),
              std::string::npos);
    EXPECT_NE(text.find("mscd_requests_run 4"), std::string::npos);
    EXPECT_NE(text.find("# TYPE mscd_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("mscd_queue_depth 1"), std::string::npos);
    // Histogram series: cumulative buckets, +Inf, _sum and _count.
    EXPECT_NE(text.find("# TYPE mscd_lat_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("mscd_lat_us_bucket{le=\"10\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("mscd_lat_us_bucket{le=\"100\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("mscd_lat_us_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("mscd_lat_us_sum 777"), std::string::npos);
    EXPECT_NE(text.find("mscd_lat_us_count 3"), std::string::npos);
}

TEST(Metrics, CallbackGaugesReadAtSnapshotTime)
{
    MetricsRegistry reg;
    int64_t level = 5;
    reg.gaugeCallback("external.level", [&] { return level; });

    EXPECT_EQ(reg.toJson().get("gauges").get("external.level").asInt(),
              5);
    level = 11;  // no re-registration needed
    EXPECT_EQ(reg.toJson().get("gauges").get("external.level").asInt(),
              11);
}

TEST(Metrics, DefaultLatencyBuckets)
{
    const std::vector<uint64_t> &b =
        MetricsRegistry::latencyBucketsUs();
    ASSERT_FALSE(b.empty());
    for (size_t i = 1; i < b.size(); ++i)
        EXPECT_LT(b[i - 1], b[i]);
    // Empty bounds at registration mean "the default latency layout".
    MetricsRegistry reg;
    EXPECT_EQ(reg.histogram("lat.us").bounds().size(), b.size());
}
