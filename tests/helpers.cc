#include "helpers.h"

#include "workloads/common.h"

namespace msc {
namespace test {

using namespace ir;
using workloads::emitCountedLoop;

Program
makeLoopProgram(int64_t n)
{
    IRBuilder b("loop");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");
    const RegId i = 16, lim = 17, tmp = 8, v = 9, sum = 18;

    f.li(lim, n);
    f.li(sum, 0);
    auto l = emitCountedLoop(f, i, lim, tmp);
    f.muli(v, i, 3);
    f.addi(tmp, i, 1000);
    f.store(v, tmp, 0);
    f.add(sum, sum, v);
    f.jmp(l.latch);
    f.setBlock(l.exit);
    f.storeAbs(sum, 0);
    f.halt();
    return b.build();
}

Program
makeDiamondProgram(int64_t n)
{
    IRBuilder b("diamond");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");
    const RegId i = 16, lim = 17, tmp = 8, sum = 18, c = 9;

    f.li(lim, n);
    f.li(sum, 0);
    auto l = emitCountedLoop(f, i, lim, tmp);
    BlockId odd = f.newBlock(), even = f.newBlock(), join = f.newBlock();
    f.andi(c, i, 1);
    f.br(c, odd, even);
    f.setBlock(odd);
    f.addi(sum, sum, 7);
    f.jmp(join);
    f.setBlock(even);
    f.subi(sum, sum, 3);
    f.fallthroughTo(join);
    f.setBlock(join);
    f.addi(tmp, i, 2000);
    f.store(sum, tmp, 0);
    f.jmp(l.latch);
    f.setBlock(l.exit);
    f.storeAbs(sum, 0);
    f.halt();
    return b.build();
}

Program
makeCallProgram(int64_t n, bool tiny_callee)
{
    IRBuilder b("calls");
    b.setEntry("main");

    FuncId fid = b.functionId("twice");
    {
        FunctionBuilder &g = b.function("twice");
        g.shli(REG_RET, 1, 1);  // r1 = arg0 * 2.
        if (!tiny_callee) {
            // Pad with enough work to exceed CALL_THRESH.
            for (int k = 0; k < 40; ++k)
                g.addi(8, 8, 1);
        }
        g.ret();
    }

    FunctionBuilder &f = b.function("main");
    const RegId i = 16, lim = 17, tmp = 8, sum = 18;
    f.li(lim, n);
    f.li(sum, 0);
    auto l = emitCountedLoop(f, i, lim, tmp);
    f.mov(1, i);
    f.call(fid, 1);
    f.add(sum, sum, REG_RET);
    f.jmp(l.latch);
    f.setBlock(l.exit);
    f.storeAbs(sum, 0);
    f.halt();
    return b.build();
}

Program
makeConflictProgram(int64_t n)
{
    IRBuilder b("conflict");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");
    const RegId i = 16, lim = 17, tmp = 8, v = 9, sum = 18;

    // Each iteration stores to slot i and loads slot i-1 (written by
    // the previous iteration): a cross-task memory dependence chain.
    f.li(lim, n);
    f.li(sum, 0);
    f.li(tmp, 42);
    f.storeAbs(tmp, 999);  // Seed slot "-1".
    auto l = emitCountedLoop(f, i, lim, tmp);
    f.addi(tmp, i, 999);
    f.load(v, tmp, 0);      // Load slot i-1 (address 999 + i).
    f.addi(v, v, 1);
    f.addi(tmp, i, 1000);
    f.store(v, tmp, 0);     // Store slot i (address 1000 + i).
    f.add(sum, sum, v);
    f.jmp(l.latch);
    f.setBlock(l.exit);
    f.storeAbs(sum, 0);
    f.halt();
    return b.build();
}

namespace {

/** Tiny deterministic RNG for program generation. */
struct Rng
{
    uint64_t s;
    explicit Rng(uint64_t seed) : s(seed ^ 0x9e3779b97f4a7c15ull) {}
    uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 17;
    }
    uint64_t next(uint64_t mod) { return next() % mod; }
};

/** Emits a straight-line burst of random arithmetic over r8..r15. */
void
emitBurst(FunctionBuilder &f, Rng &rng, unsigned len)
{
    for (unsigned k = 0; k < len; ++k) {
        RegId d = RegId(8 + rng.next(8));
        RegId a = RegId(8 + rng.next(8));
        switch (rng.next(5)) {
          case 0: f.addi(d, a, int64_t(rng.next(64))); break;
          case 1: f.xor_(d, a, RegId(8 + rng.next(8))); break;
          case 2: f.muli(d, a, int64_t(1 + rng.next(7))); break;
          case 3:
            f.andi(d, a, 1023);
            f.addi(d, d, 5000);
            f.load(d, d, 0);
            break;
          default:
            f.andi(d, a, 1023);
            f.addi(d, d, 5000);
            f.store(a, d, 0);
            break;
        }
    }
}

/**
 * Recursively emits a structured region starting at the current
 * insertion point and ending by falling through to a fresh block,
 * which becomes the insertion point.
 */
void
emitRegion(FunctionBuilder &f, Rng &rng, unsigned depth)
{
    emitBurst(f, rng, 1 + unsigned(rng.next(6)));
    if (depth == 0)
        return;

    switch (rng.next(3)) {
      case 0: {  // Diamond.
        BlockId t = f.newBlock(), e = f.newBlock(), j = f.newBlock();
        f.andi(8, 9, 3);
        f.br(8, t, e);
        f.setBlock(t);
        emitRegion(f, rng, depth - 1);
        f.jmp(j);
        f.setBlock(e);
        emitRegion(f, rng, depth - 1);
        emitBurst(f, rng, 1);
        f.fallthroughTo(j);
        f.setBlock(j);
        emitBurst(f, rng, 1 + unsigned(rng.next(4)));
        break;
      }
      case 1: {  // Bounded counted loop using a callee-saved IV.
        RegId iv = RegId(20 + rng.next(8));
        RegId bound = 19;
        BlockId head = f.newBlock(), body = f.newBlock();
        BlockId latch = f.newBlock(), exit = f.newBlock();
        f.li(iv, 0);
        f.li(bound, int64_t(2 + rng.next(6)));
        f.fallthroughTo(head);
        f.setBlock(head);
        f.slt(8, iv, bound);
        f.br(8, body, exit);
        f.setBlock(body);
        emitRegion(f, rng, depth - 1);
        f.fallthroughTo(latch);
        f.setBlock(latch);
        f.addi(iv, iv, 1);
        f.jmp(head);
        f.setBlock(exit);
        emitBurst(f, rng, 1);
        break;
      }
      default:  // Plain burst.
        emitBurst(f, rng, 2 + unsigned(rng.next(8)));
        break;
    }
}

} // anonymous namespace

Program
makeRandomProgram(uint64_t seed, unsigned size_class)
{
    Rng rng(seed);
    IRBuilder b("random");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    for (RegId r = 8; r < 16; ++r)
        f.li(r, int64_t(rng.next(1000)));
    unsigned regions = 1 + size_class;
    for (unsigned k = 0; k < regions; ++k)
        emitRegion(f, rng, 2);
    // Publish a checksum.
    f.add(8, 8, 9);
    f.add(8, 8, 10);
    f.storeAbs(8, 0);
    f.halt();
    return b.build();
}

} // namespace test
} // namespace msc
