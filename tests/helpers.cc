#include "helpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "fuzz/rng.h"
#include "workloads/common.h"

namespace msc {
namespace test {

using namespace ir;
using workloads::emitCountedLoop;

namespace {

/** Last effective seed handed to a test RNG (for failure reports). */
std::atomic<uint64_t> g_active_seed{0};
std::atomic<bool> g_seed_used{false};

/** Prints the active seed whenever an assertion fails, so any
 *  randomized failure is reproducible from the log alone. */
class SeedReportListener : public ::testing::EmptyTestEventListener
{
    void
    OnTestPartResult(const ::testing::TestPartResult &result) override
    {
        if (!result.failed() || !g_seed_used.load())
            return;
        std::fprintf(stderr,
                     "[   SEED   ] effective seed %llu (offset "
                     "MSC_TEST_SEED=%llu); rerun with MSC_TEST_SEED "
                     "to reproduce\n",
                     (unsigned long long)g_active_seed.load(),
                     (unsigned long long)seedOffset());
    }
};

const bool g_listener_registered = [] {
    ::testing::UnitTest::GetInstance()->listeners().Append(
        new SeedReportListener);
    return true;
}();

} // anonymous namespace

uint64_t
seedOffset()
{
    static const uint64_t offset = [] {
        const char *env = std::getenv("MSC_TEST_SEED");
        return env ? std::strtoull(env, nullptr, 10) : 0ull;
    }();
    return offset;
}

uint64_t
effectiveSeed(uint64_t seed)
{
    uint64_t s = seed + seedOffset();
    g_active_seed.store(s);
    g_seed_used.store(true);
    return s;
}

Program
makeLoopProgram(int64_t n)
{
    IRBuilder b("loop");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");
    const RegId i = 16, lim = 17, tmp = 8, v = 9, sum = 18;

    f.li(lim, n);
    f.li(sum, 0);
    auto l = emitCountedLoop(f, i, lim, tmp);
    f.muli(v, i, 3);
    f.addi(tmp, i, 1000);
    f.store(v, tmp, 0);
    f.add(sum, sum, v);
    f.jmp(l.latch);
    f.setBlock(l.exit);
    f.storeAbs(sum, 0);
    f.halt();
    return b.build();
}

Program
makeDiamondProgram(int64_t n)
{
    IRBuilder b("diamond");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");
    const RegId i = 16, lim = 17, tmp = 8, sum = 18, c = 9;

    f.li(lim, n);
    f.li(sum, 0);
    auto l = emitCountedLoop(f, i, lim, tmp);
    BlockId odd = f.newBlock(), even = f.newBlock(), join = f.newBlock();
    f.andi(c, i, 1);
    f.br(c, odd, even);
    f.setBlock(odd);
    f.addi(sum, sum, 7);
    f.jmp(join);
    f.setBlock(even);
    f.subi(sum, sum, 3);
    f.fallthroughTo(join);
    f.setBlock(join);
    f.addi(tmp, i, 2000);
    f.store(sum, tmp, 0);
    f.jmp(l.latch);
    f.setBlock(l.exit);
    f.storeAbs(sum, 0);
    f.halt();
    return b.build();
}

Program
makeCallProgram(int64_t n, bool tiny_callee)
{
    IRBuilder b("calls");
    b.setEntry("main");

    FuncId fid = b.functionId("twice");
    {
        FunctionBuilder &g = b.function("twice");
        g.shli(REG_RET, 1, 1);  // r1 = arg0 * 2.
        if (!tiny_callee) {
            // Pad with enough work to exceed CALL_THRESH.
            for (int k = 0; k < 40; ++k)
                g.addi(8, 8, 1);
        }
        g.ret();
    }

    FunctionBuilder &f = b.function("main");
    const RegId i = 16, lim = 17, tmp = 8, sum = 18;
    f.li(lim, n);
    f.li(sum, 0);
    auto l = emitCountedLoop(f, i, lim, tmp);
    f.mov(1, i);
    f.call(fid, 1);
    f.add(sum, sum, REG_RET);
    f.jmp(l.latch);
    f.setBlock(l.exit);
    f.storeAbs(sum, 0);
    f.halt();
    return b.build();
}

Program
makeConflictProgram(int64_t n)
{
    IRBuilder b("conflict");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");
    const RegId i = 16, lim = 17, tmp = 8, v = 9, sum = 18;

    // Each iteration stores to slot i and loads slot i-1 (written by
    // the previous iteration): a cross-task memory dependence chain.
    f.li(lim, n);
    f.li(sum, 0);
    f.li(tmp, 42);
    f.storeAbs(tmp, 999);  // Seed slot "-1".
    auto l = emitCountedLoop(f, i, lim, tmp);
    f.addi(tmp, i, 999);
    f.load(v, tmp, 0);      // Load slot i-1 (address 999 + i).
    f.addi(v, v, 1);
    f.addi(tmp, i, 1000);
    f.store(v, tmp, 0);     // Store slot i (address 1000 + i).
    f.add(sum, sum, v);
    f.jmp(l.latch);
    f.setBlock(l.exit);
    f.storeAbs(sum, 0);
    f.halt();
    return b.build();
}

namespace {

// Program generation draws through fuzz::Rng: the old local generator
// reduced raw draws with `% mod`, whose low-bit bias skews shape
// distributions; fuzz::Rng::bounded() is the shared unbiased draw.
using fuzz::Rng;

/** Emits a straight-line burst of random arithmetic over r8..r15. */
void
emitBurst(FunctionBuilder &f, Rng &rng, unsigned len)
{
    for (unsigned k = 0; k < len; ++k) {
        RegId d = RegId(8 + rng.bounded(8));
        RegId a = RegId(8 + rng.bounded(8));
        switch (rng.bounded(5)) {
          case 0: f.addi(d, a, int64_t(rng.bounded(64))); break;
          case 1: f.xor_(d, a, RegId(8 + rng.bounded(8))); break;
          case 2: f.muli(d, a, int64_t(1 + rng.bounded(7))); break;
          case 3:
            f.andi(d, a, 1023);
            f.addi(d, d, 5000);
            f.load(d, d, 0);
            break;
          default:
            f.andi(d, a, 1023);
            f.addi(d, d, 5000);
            f.store(a, d, 0);
            break;
        }
    }
}

/**
 * Recursively emits a structured region starting at the current
 * insertion point and ending by falling through to a fresh block,
 * which becomes the insertion point.
 */
void
emitRegion(FunctionBuilder &f, Rng &rng, unsigned depth)
{
    emitBurst(f, rng, 1 + unsigned(rng.bounded(6)));
    if (depth == 0)
        return;

    switch (rng.bounded(3)) {
      case 0: {  // Diamond.
        BlockId t = f.newBlock(), e = f.newBlock(), j = f.newBlock();
        f.andi(8, 9, 3);
        f.br(8, t, e);
        f.setBlock(t);
        emitRegion(f, rng, depth - 1);
        f.jmp(j);
        f.setBlock(e);
        emitRegion(f, rng, depth - 1);
        emitBurst(f, rng, 1);
        f.fallthroughTo(j);
        f.setBlock(j);
        emitBurst(f, rng, 1 + unsigned(rng.bounded(4)));
        break;
      }
      case 1: {  // Bounded counted loop using a callee-saved IV.
        RegId iv = RegId(20 + rng.bounded(8));
        RegId bound = 19;
        BlockId head = f.newBlock(), body = f.newBlock();
        BlockId latch = f.newBlock(), exit = f.newBlock();
        f.li(iv, 0);
        f.li(bound, int64_t(2 + rng.bounded(6)));
        f.fallthroughTo(head);
        f.setBlock(head);
        f.slt(8, iv, bound);
        f.br(8, body, exit);
        f.setBlock(body);
        emitRegion(f, rng, depth - 1);
        f.fallthroughTo(latch);
        f.setBlock(latch);
        f.addi(iv, iv, 1);
        f.jmp(head);
        f.setBlock(exit);
        emitBurst(f, rng, 1);
        break;
      }
      default:  // Plain burst.
        emitBurst(f, rng, 2 + unsigned(rng.bounded(8)));
        break;
    }
}

} // anonymous namespace

Program
makeRandomProgram(uint64_t seed, unsigned size_class)
{
    Rng rng(effectiveSeed(seed));
    IRBuilder b("random");
    b.setEntry("main");
    FunctionBuilder &f = b.function("main");

    for (RegId r = 8; r < 16; ++r)
        f.li(r, int64_t(rng.bounded(1000)));
    unsigned regions = 1 + size_class;
    for (unsigned k = 0; k < regions; ++k)
        emitRegion(f, rng, 2);
    // Publish a checksum.
    f.add(8, 8, 9);
    f.add(8, 8, 10);
    f.storeAbs(8, 0);
    f.halt();
    return b.build();
}

} // namespace test
} // namespace msc
