/**
 * @file
 * Parser tests: print -> parse round trips, hand-written sources, and
 * error reporting.
 */

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "profile/interpreter.h"
#include "workloads/workload.h"

using namespace msc;
using namespace msc::ir;

namespace {

/** Print -> parse -> compare structure and behaviour. */
void
roundTrip(const Program &p)
{
    std::string text = toString(p);
    Program q = parseProgram(text);

    ASSERT_EQ(q.functions.size(), p.functions.size());
    for (size_t f = 0; f < p.functions.size(); ++f) {
        SCOPED_TRACE("function " + p.functions[f].name);
        ASSERT_EQ(q.functions[f].blocks.size(),
                  p.functions[f].blocks.size());
        EXPECT_EQ(q.functions[f].entry, p.functions[f].entry);
        for (size_t b = 0; b < p.functions[f].blocks.size(); ++b) {
            const auto &pb = p.functions[f].blocks[b];
            const auto &qb = q.functions[f].blocks[b];
            ASSERT_EQ(qb.insts.size(), pb.insts.size())
                << "bb" << b;
            EXPECT_EQ(qb.fallthrough, pb.fallthrough) << "bb" << b;
            for (size_t i = 0; i < pb.insts.size(); ++i) {
                const auto &pi = pb.insts[i];
                const auto &qi = qb.insts[i];
                EXPECT_EQ(qi.op, pi.op) << "bb" << b << "[" << i << "]";
                EXPECT_EQ(qi.dst, pi.dst);
                EXPECT_EQ(qi.src1, pi.src1);
                EXPECT_EQ(qi.src2, pi.src2);
                EXPECT_EQ(qi.imm, pi.imm);
                EXPECT_EQ(qi.target, pi.target);
                EXPECT_EQ(qi.callee, pi.callee);
                EXPECT_EQ(qi.nargs, pi.nargs);
            }
        }
    }

    // Behavioural equivalence.
    profile::Interpreter a(p), b2(q);
    a.runQuiet(200'000);
    b2.runQuiet(200'000);
    EXPECT_EQ(a.instCount(), b2.instCount());
    EXPECT_EQ(a.mem(0), b2.mem(0));
}

} // anonymous namespace

TEST(Parser, RoundTripHelpers)
{
    roundTrip(test::makeLoopProgram(20));
    roundTrip(test::makeDiamondProgram(12));
    roundTrip(test::makeCallProgram(8));
    roundTrip(test::makeConflictProgram(16));
}

TEST(Parser, RoundTripRandomPrograms)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        roundTrip(test::makeRandomProgram(seed, 2));
    }
}

class ParserWorkloadRoundTrip
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ParserWorkloadRoundTrip, RoundTrips)
{
    roundTrip(workloads::buildWorkload(GetParam(),
                                       workloads::Scale::Small));
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ParserWorkloadRoundTrip,
    ::testing::Values("compress", "go", "li", "fpppp", "tomcatv",
                      "mgrid", "wave5", "vortex"),
    [](const auto &info) { return std::string(info.param); });

TEST(Parser, HandWrittenSource)
{
    const char *src = R"(
program demo entry @main
; a comment line
func @main {
  bb0 (entry):    ; ft -> bb1
    li r8, 5
    li r9, 0
  bb1:
    add r9, r9, r8
    sub r8, r8, 1
    br r8, bb1
  bb2:
    st r9, [-- + 0]
    halt
}
)";
    // bb1's fall-through is bb2; declare it via the ft comment.
    std::string text = src;
    size_t pos = text.find("  bb1:");
    text.insert(pos + 6, "    ; ft -> bb2");

    Program p = parseProgram(text);
    profile::Interpreter in(p);
    in.runQuiet();
    EXPECT_TRUE(in.halted());
    EXPECT_EQ(in.mem(0), 5 + 4 + 3 + 2 + 1);
}

TEST(Parser, FloatLiterals)
{
    const char *src = R"(
program f entry @main
func @main {
  bb0 (entry):
    fli f40, 2.5
    fli f41, -0.125
    fadd f42, f40, f41
    ftoi r9, f42
    st r9, [-- + 1]
    halt
}
)";
    Program p = parseProgram(src);
    profile::Interpreter in(p);
    in.runQuiet();
    EXPECT_EQ(in.mem(1), 2);  // 2.375 truncates to 2.
}

TEST(Parser, ReportsLineNumbers)
{
    try {
        parseProgram("program x entry @main\n"
                     "func @main {\n"
                     "  bb0 (entry):\n"
                     "    frobnicate r1, r2\n"
                     "}\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line(), 4u);
        EXPECT_NE(std::string(e.what()).find("frobnicate"),
                  std::string::npos);
    }
}

TEST(Parser, RejectsUnknownEntry)
{
    EXPECT_THROW(parseProgram("program x entry @nothere\n"
                              "func @main {\n  bb0 (entry):\n"
                              "    halt\n}\n"),
                 ParseError);
}

TEST(Parser, RejectsMalformedPrograms)
{
    // Branch to a never-declared block fails verification.
    EXPECT_THROW(parseProgram("program x entry @main\n"
                              "func @main {\n  bb0 (entry):\n"
                              "    li r8, 1\n    br r8, bb9\n}\n"),
                 std::runtime_error);
    // Instruction outside any block.
    EXPECT_THROW(parseProgram("program x entry @main\n"
                              "func @main {\n    li r8, 1\n}\n"),
                 ParseError);
}

TEST(Parser, ForwardFunctionReferences)
{
    const char *src = R"(
program fwd entry @main
func @main {
  bb0 (entry):    ; ft -> bb1
    li r1, 21
    call @double, 1
  bb1:
    st r1, [-- + 0]
    halt
}
func @double {
  bb0 (entry):
    add r1, r1, r1
    ret
}
)";
    Program p = parseProgram(src);
    profile::Interpreter in(p);
    in.runQuiet();
    EXPECT_EQ(in.mem(0), 42);
}
