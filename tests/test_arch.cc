/**
 * @file
 * Unit tests for the hardware component models: caches, ARB, sync
 * table, predictors, and the forwarding ring.
 */

#include <gtest/gtest.h>

#include "arch/arb.h"
#include "arch/cache.h"
#include "arch/predictors.h"
#include "arch/ring.h"
#include "arch/stats.h"

using namespace msc;
using namespace msc::arch;

TEST(Cache, HitAfterFill)
{
    CacheConfig cfg{1024, 2, 32, 1, 1};
    Cache c(cfg);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x104));  // Same 32B line.
    EXPECT_FALSE(c.access(0x120)); // Next line.
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B per set-pair: sets = 1024/(32*2) = 16 sets.
    CacheConfig cfg{1024, 2, 32, 1, 1};
    Cache c(cfg);
    uint64_t set_stride = 16 * 32;  // Same set index.
    c.access(0);
    c.access(set_stride);
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(set_stride));
    c.access(0);                    // Touch 0: stride becomes LRU.
    c.access(2 * set_stride);       // Evicts set_stride.
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(set_stride));
    EXPECT_TRUE(c.probe(2 * set_stride));
}

TEST(Cache, ProbeDoesNotFill)
{
    CacheConfig cfg{1024, 2, 32, 1, 1};
    Cache c(cfg);
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.accesses(), 0u);
}

TEST(MemoryHierarchyTest, LatenciesCompose)
{
    SimConfig cfg;
    MemoryHierarchy h(cfg);
    // Cold access: L1 miss + L2 miss + memory.
    uint64_t t1 = h.dataAccess(0x1000, 100);
    EXPECT_EQ(t1, 100 + cfg.l1d.hitLatency + cfg.l2.hitLatency
              + cfg.memLatency);
    // Warm access next cycle: L1 hit.
    uint64_t t2 = h.dataAccess(0x1000, 200);
    EXPECT_EQ(t2, 200 + cfg.l1d.hitLatency);
}

TEST(MemoryHierarchyTest, BankConflictSerializes)
{
    SimConfig cfg;
    cfg.l1d.banks = 2;
    MemoryHierarchy h(cfg);
    h.dataAccess(0, 10);
    h.dataAccess(0, 10);
    // Third same-bank access at the same cycle queues two deep.
    uint64_t t = h.dataAccess(0, 10);
    EXPECT_GE(t, 12 + cfg.l1d.hitLatency);
    // A different bank is free.
    uint64_t u = h.dataAccess(32, 10);
    EXPECT_LE(u, 10 + cfg.l1d.hitLatency + cfg.l2.hitLatency
              + cfg.memLatency);
}

TEST(ArbTest, StoreThenYoungerLoadIsFine)
{
    Arb arb(64);
    arb.recordStore(1, 100);
    arb.recordLoad(2, 100, 0x400);
    // The younger load saw task 1's version: no violation when task 1
    // stores elsewhere or even again to the same address.
    auto r = arb.recordStore(1, 100);
    EXPECT_EQ(r.victim, NO_TASK);
}

TEST(ArbTest, PrematureLoadViolates)
{
    Arb arb(64);
    arb.recordLoad(3, 200, 0x404);     // Task 3 loads first...
    auto r = arb.recordStore(2, 200);  // ...then task 2 stores.
    EXPECT_EQ(r.victim, 3u);
    EXPECT_EQ(r.loadPc, 0x404u);
}

TEST(ArbTest, InterveningStoreShieldsLoad)
{
    Arb arb(64);
    arb.recordStore(3, 300);           // Task 3 stores...
    arb.recordLoad(4, 300, 0x408);     // ...task 4 reads task 3's value.
    auto r = arb.recordStore(2, 300);  // Task 2's store is older than 3.
    EXPECT_EQ(r.victim, NO_TASK) << "load got its value from task 3";
}

TEST(ArbTest, OwnStoreShieldsOwnLoad)
{
    Arb arb(64);
    arb.recordStore(5, 400);
    arb.recordLoad(5, 400, 0x40c);     // Reads its own store.
    auto r = arb.recordStore(4, 400);
    EXPECT_EQ(r.victim, NO_TASK);
}

TEST(ArbTest, OldestViolatorWins)
{
    Arb arb(64);
    arb.recordLoad(5, 500, 0x500);
    arb.recordLoad(3, 500, 0x504);
    auto r = arb.recordStore(2, 500);
    EXPECT_EQ(r.victim, 3u);
}

TEST(ArbTest, SquashRemovesYoungAccesses)
{
    Arb arb(64);
    arb.recordLoad(3, 600, 0x600);
    arb.recordLoad(4, 601, 0x604);
    arb.squashFrom(4);
    auto r = arb.recordStore(2, 601);
    EXPECT_EQ(r.victim, NO_TASK);      // Task 4's load was squashed.
    auto r2 = arb.recordStore(2, 600);
    EXPECT_EQ(r2.victim, 3u);          // Task 3 survives.
}

TEST(ArbTest, RetireReleasesEntries)
{
    Arb arb(2);
    arb.recordLoad(1, 700, 0);
    arb.recordLoad(1, 701, 0);
    EXPECT_TRUE(arb.full());
    arb.retireUpTo(1);
    EXPECT_FALSE(arb.full());
    EXPECT_EQ(arb.entriesInUse(), 0u);
}

TEST(SyncTableTest, RemembersAndEvicts)
{
    SyncTable st(2);
    st.insert(0x10, 0x90);
    st.insert(0x20, 0xa0);
    EXPECT_EQ(st.producerOf(0x10), 0x90u);
    EXPECT_EQ(st.producerOf(0x20), 0xa0u);
    EXPECT_EQ(st.producerOf(0x30), 0u);
    st.insert(0x30, 0xb0);             // Evicts one entry.
    EXPECT_EQ(st.size(), 2u);
    EXPECT_EQ(st.producerOf(0x30), 0xb0u);
}

TEST(GshareTest, LearnsBias)
{
    Gshare g(8, 1024);
    for (int i = 0; i < 16; ++i)
        g.update(0x40, true);
    EXPECT_TRUE(g.predict(0x40));
    for (int i = 0; i < 16; ++i)
        g.update(0x40, false);
    EXPECT_FALSE(g.predict(0x40));
}

TEST(GshareTest, LearnsAlternation)
{
    Gshare g(8, 4096);
    // Strict alternation is capturable through history.
    bool v = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        v = !v;
        if (i > 100 && g.predict(0x80) == v)
            ++correct;
        g.update(0x80, v);
    }
    EXPECT_GT(correct, 280);
}

TEST(TaskPredictorTest, LearnsDominantTarget)
{
    TaskPredictor tp(8, 4096, 4);
    for (int i = 0; i < 32; ++i)
        tp.update(0x100, 2);
    EXPECT_EQ(tp.predict(0x100), 2u);
}

TEST(TaskPredictorTest, PathHistoryDisambiguates)
{
    TaskPredictor tp(8, 1 << 16, 4);
    // Task B's successor depends on whether A or C preceded it:
    // sequence A->B->0, C->B->1, repeated. A path-based predictor
    // learns it; a history-less table would sit near 50%.
    int correct = 0, total = 0;
    for (int round = 0; round < 300; ++round) {
        bool via_a = (round & 1) == 0;
        tp.update(via_a ? 0xA00 : 0xC00, 0);
        unsigned pred = tp.predict(0xB00);
        unsigned actual = via_a ? 0 : 1;
        if (round > 100) {
            ++total;
            if (pred == actual)
                ++correct;
        }
        tp.update(0xB00, actual);
    }
    EXPECT_GT(correct * 100, total * 90);
}

TEST(RasTest, LifoBehaviour)
{
    ReturnAddressStack ras(4);
    ras.push({0, 1});
    ras.push({0, 2});
    EXPECT_EQ(ras.pop(), (ir::BlockRef{0, 2}));
    EXPECT_EQ(ras.pop(), (ir::BlockRef{0, 1}));
    EXPECT_FALSE(ras.pop().valid());
}

TEST(RasTest, OverflowDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push({0, 1});
    ras.push({0, 2});
    ras.push({0, 3});
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), (ir::BlockRef{0, 3}));
    EXPECT_EQ(ras.pop(), (ir::BlockRef{0, 2}));
    EXPECT_FALSE(ras.pop().valid());
}

TEST(RingTest, AdjacentBypassSameCycle)
{
    Ring ring(4, 2);
    std::vector<uint64_t> arr;
    ring.broadcast(0, 100, arr);
    EXPECT_EQ(arr[0], 100u);
    EXPECT_EQ(arr[1], 100u);   // Same-cycle bypass to the neighbour.
    EXPECT_EQ(arr[2], 101u);
    EXPECT_EQ(arr[3], 102u);
}

TEST(RingTest, BandwidthLimitsQueueing)
{
    Ring ring(2, 1);           // 1 value/cycle/link.
    std::vector<uint64_t> a1, a2, a3;
    ring.broadcast(0, 50, a1);
    ring.broadcast(0, 50, a2);
    ring.broadcast(0, 50, a3);
    EXPECT_EQ(a1[1], 50u);
    EXPECT_EQ(a2[1], 51u);     // Second value waits a cycle.
    EXPECT_EQ(a3[1], 52u);
}

TEST(RingTest, WrapsAroundFromAnyPu)
{
    Ring ring(4, 2);
    std::vector<uint64_t> arr;
    ring.broadcast(2, 10, arr);
    EXPECT_EQ(arr[2], 10u);
    EXPECT_EQ(arr[3], 10u);
    EXPECT_EQ(arr[0], 11u);
    EXPECT_EQ(arr[1], 12u);
}

// ---------------------------------------------------------------------
// SimStats formatting.

TEST(FormatBucketsTest, PercentColumnSumsToWhole)
{
    SimStats s;
    s.buckets.add(CycleKind::Useful, 600);
    s.buckets.add(CycleKind::TaskStart, 250);
    s.buckets.add(CycleKind::LoadImbalance, 150);
    std::string out = formatBuckets(s);

    EXPECT_NE(out.find("useful"), std::string::npos);
    EXPECT_NE(out.find("60.0%"), std::string::npos);
    EXPECT_NE(out.find("25.0%"), std::string::npos);
    EXPECT_NE(out.find("15.0%"), std::string::npos);
    // Total row carries the occupied sum.
    EXPECT_NE(out.find("total-occupied"), std::string::npos);
    EXPECT_NE(out.find("1000"), std::string::npos);
    // The dominant category gets the longest bar.
    EXPECT_NE(out.find("|###"), std::string::npos);
}

TEST(FormatBucketsTest, EveryKindListedOnce)
{
    SimStats s;
    std::string out = formatBuckets(s);
    for (size_t i = 0; i < NUM_CYCLE_KINDS; ++i)
        EXPECT_NE(out.find(cycleKindName(CycleKind(i))),
                  std::string::npos)
            << cycleKindName(CycleKind(i));
}

TEST(FormatBucketsTest, ZeroTotalRendersZeroPercents)
{
    SimStats s;                     // All buckets zero.
    std::string out = formatBuckets(s);
    EXPECT_EQ(out.find("nan"), std::string::npos);
    EXPECT_EQ(out.find("inf"), std::string::npos);
    EXPECT_EQ(out.find('#'), std::string::npos);  // No bars.
    EXPECT_NE(out.find("0.0%"), std::string::npos);
    EXPECT_NE(out.find("total-occupied"), std::string::npos);
}

TEST(SimStatsTest, RegisterHistogramMatchesArchRegCount)
{
    // The shared constant (arch/config.h) keeps the diagnostic
    // histogram and the IR's register file in lockstep.
    SimStats s;
    EXPECT_EQ(s.extWaitByReg.size(), size_t(NUM_REGS));
    EXPECT_EQ(unsigned(NUM_REGS), unsigned(msc::ir::NUM_REGS));
}
